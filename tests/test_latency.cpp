// Tests of the tdn::obs v2 latency layer: LatencyHistogram bucketing and
// percentile determinism, the attribution sum invariant (components
// telescope to the measured end-to-end miss latency by construction),
// critical-path bounds on hand-built DAGs and full-system runs, and the
// harness's atomic report-writing path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "harness/results_cache.hpp"
#include "obs/attribution.hpp"
#include "obs/critical_path.hpp"
#include "obs/latency_histogram.hpp"
#include "obs/recorder.hpp"
#include "system/tiled_system.hpp"

using namespace tdn;
using namespace tdn::obs;

namespace {

system::SystemConfig cfg_for(system::PolicyKind kind) {
  system::SystemConfig cfg;
  cfg.policy = kind;
  return cfg;
}

void tiny_program(system::TiledSystem& sys, int tasks = 8) {
  auto& rt = sys.runtime();
  for (int i = 0; i < tasks; ++i) {
    const AddrRange r = sys.vspace().allocate(16 * kKiB, 64, "r");
    const DepId d = rt.region(r, "r");
    core::TaskProgram p;
    core::AccessPhase ph;
    ph.range = r;
    ph.kind = (i % 2 != 0) ? AccessKind::Write : AccessKind::Read;
    p.add_phase(ph);
    rt.create_task("t" + std::to_string(i),
                   {{d, i % 2 != 0 ? DepUse::Out : DepUse::In}},
                   std::move(p));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, BucketFloorRoundTripAndErrorBound) {
  for (const Cycle v : {Cycle{0}, Cycle{1}, Cycle{15}, Cycle{16}, Cycle{17},
                        Cycle{31}, Cycle{32}, Cycle{100}, Cycle{1000},
                        Cycle{12345}, Cycle{1} << 20, (Cycle{1} << 30) - 1}) {
    const std::size_t idx = LatencyHistogram::index(v);
    const Cycle floor = LatencyHistogram::bucket_floor(idx);
    ASSERT_LE(floor, v) << v;
    if (v < 16) {
      EXPECT_EQ(floor, v);  // unit buckets are exact
    } else {
      // 16 linear sub-buckets per octave: relative error bounded by 1/16.
      EXPECT_LE(v - floor, v / 16) << v;
    }
    // floor is the smallest member of its bucket.
    EXPECT_EQ(LatencyHistogram::index(floor), idx) << v;
  }
}

TEST(LatencyHistogram, ExactPercentilesOnSmallValues) {
  LatencyHistogram h;
  for (Cycle v = 1; v <= 16; ++v) h.add(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.sum(), 136u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 16u);
  // rank = ceil(q * 16): p50 -> 8th smallest = 8, p90 -> 15th = 15,
  // p999 -> 16th = 16 (exact: unit buckets below 16, and 16 is a floor).
  EXPECT_EQ(h.percentile(0.50), 8u);
  EXPECT_EQ(h.percentile(0.90), 15u);
  EXPECT_EQ(h.percentile(0.999), 16u);
  EXPECT_EQ(h.percentile(1.0), 16u);
}

TEST(LatencyHistogram, EmptyAndSingleSample) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.add(42);
  EXPECT_EQ(h.percentile(0.001), LatencyHistogram::bucket_floor(
                                     LatencyHistogram::index(42)));
  EXPECT_EQ(h.percentile(0.999), h.percentile(0.001));
}

TEST(LatencyHistogram, DeterministicAcrossInsertionOrder) {
  std::vector<Cycle> values;
  std::mt19937_64 rng(123);
  for (int i = 0; i < 10'000; ++i)
    values.push_back(rng() % (Cycle{1} << 22));
  LatencyHistogram a, b;
  for (const Cycle v : values) a.add(v);
  std::shuffle(values.begin(), values.end(), rng);
  for (const Cycle v : values) b.add(v);
  EXPECT_EQ(a.summary_json(), b.summary_json());
  for (const double q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(a.percentile(q), b.percentile(q)) << q;
}

TEST(LatencyHistogram, MergeEqualsUnion) {
  LatencyHistogram a, b, all;
  for (Cycle v = 0; v < 5'000; v += 7) {
    ((v % 2 != 0) ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.summary_json(), all.summary_json());
  LatencyHistogram empty;
  a.merge(empty);  // merging an empty histogram is a no-op
  EXPECT_EQ(a.summary_json(), all.summary_json());
}

TEST(LatencyHistogram, OverflowClampsToMaxBucket) {
  LatencyHistogram h;
  h.add(LatencyHistogram::kMaxValue * 4);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.percentile(1.0),
            LatencyHistogram::bucket_floor(
                LatencyHistogram::index(LatencyHistogram::kMaxValue)));
}

// ---------------------------------------------------------------------------
// Latency attribution: the sum invariant
// ---------------------------------------------------------------------------

TEST(Attribution, ComponentsSumToEndToEndLatency) {
  for (const auto kind :
       {system::PolicyKind::SNuca, system::PolicyKind::TdNuca}) {
    RecorderConfig rc;
    rc.attribution = true;
    Recorder rec(rc);
    system::TiledSystem sys(cfg_for(kind), &rec);
    tiny_program(sys, 16);
    sys.run(/*cycle_limit=*/50'000'000);
    ASSERT_TRUE(sys.completed());

    const LatencyAttribution& attr = *rec.attribution();
    // Every L1 miss the coherence layer measured was attributed, either as
    // a primary transaction or as a merged (MSHR-coalesced) one...
    const auto& ms = sys.caches().stats().miss_latency;
    EXPECT_EQ(attr.total().count() + attr.merged().count(), ms.samples())
        << system::to_string(kind);
    // ...and the attributed cycles are exactly the measured cycles.
    EXPECT_EQ(static_cast<double>(attr.total().sum() + attr.merged().sum()),
              ms.total())
        << system::to_string(kind);

    // The six components telescope to the end-to-end latency by
    // construction: equal counts, equal sums.
    Cycle component_sum = 0;
    for (unsigned c = 0; c < LatencyAttribution::kComponents; ++c) {
      const auto& h = attr.component(static_cast<LatencyComponent>(c));
      EXPECT_EQ(h.count(), attr.total().count())
          << to_string(static_cast<LatencyComponent>(c));
      component_sum += h.sum();
    }
    EXPECT_EQ(component_sum, attr.total().sum()) << system::to_string(kind);

    // Distance bucketing partitions the primary misses.
    std::uint64_t by_dist = 0;
    for (unsigned d = 0; d <= LatencyAttribution::kMaxDistance; ++d)
      by_dist += attr.by_distance(d).count();
    EXPECT_EQ(by_dist, attr.total().count());

    // Nothing left in flight once the run drained.
    EXPECT_EQ(attr.inflight(), 0u);
    EXPECT_GT(attr.total().count(), 0u);
  }
}

TEST(Attribution, DisabledRecorderHasNoAttribution) {
  Recorder rec;  // attribution off
  EXPECT_FALSE(rec.attribution_on());
  EXPECT_EQ(rec.attribution(), nullptr);
  RecorderConfig rc;
  rc.attribution = true;
  Recorder on(rc);
  EXPECT_TRUE(on.attribution_on());
  ASSERT_NE(on.attribution(), nullptr);
  EXPECT_TRUE(on.config().any());
}

TEST(Attribution, ReportJsonCarriesSumCheck) {
  RecorderConfig rc;
  rc.attribution = true;
  Recorder rec(rc);
  system::TiledSystem sys(cfg_for(system::PolicyKind::TdNuca), &rec);
  tiny_program(sys, 8);
  sys.run(/*cycle_limit=*/50'000'000);
  const std::string json = rec.attribution()->report_json();
  EXPECT_NE(json.find("\"sum_check\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"access_latency\""), std::string::npos);
  EXPECT_NE(json.find("\"by_distance\""), std::string::npos);
  EXPECT_NE(json.find("\"mshr_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"unattributed_inflight\":0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Critical-path analysis
// ---------------------------------------------------------------------------

namespace {

runtime::Task make_task(TaskId id, std::vector<TaskId> preds, Cycle started,
                        Cycle finished, Cycle exec_started, Cycle exec_finished,
                        Cycle compute) {
  runtime::Task t;
  t.id = id;
  t.state = runtime::TaskState::Done;
  t.predecessors = std::move(preds);
  t.started_at = started;
  t.finished_at = finished;
  t.exec_started_at = exec_started;
  t.exec_finished_at = exec_finished;
  t.compute_cycles = compute;
  return t;
}

}  // namespace

TEST(CriticalPath, HandBuiltDagDecomposesExactly) {
  std::vector<runtime::Task> tasks;
  tasks.push_back(make_task(0, {}, 10, 100, 20, 90, 50));
  tasks.push_back(make_task(1, {0}, 120, 300, 130, 290, 100));
  tasks.push_back(make_task(2, {0}, 110, 200, 115, 195, 30));
  const CriticalPathReport r = analyze_critical_path(tasks);

  EXPECT_EQ(r.tasks_total, 3u);
  EXPECT_EQ(r.tasks_done, 3u);
  EXPECT_EQ(r.makespan, 300u);
  EXPECT_EQ(r.longest_task, 180u);  // task 1: 120 -> 300

  // Realized walk: sink is task 1, its latest predecessor task 0.
  ASSERT_EQ(r.path.size(), 2u);
  EXPECT_EQ(r.path.front(), 0u);  // reported source -> sink
  EXPECT_EQ(r.path.back(), 1u);
  EXPECT_EQ(r.realized_cycles, r.makespan);
  EXPECT_EQ(r.dep_wait, 10u + 20u);             // chain start + 100 -> 120
  EXPECT_EQ(r.runtime_overhead, 20u + 20u);     // dispatch + end hooks
  EXPECT_EQ(r.compute, 50u + 100u);
  EXPECT_EQ(r.memory_stall, (70u - 50u) + (160u - 100u));
  EXPECT_EQ(r.dep_wait + r.runtime_overhead + r.compute + r.memory_stall,
            r.makespan);

  // Inherent path: durations 90 + 180 through 0 -> 1.
  EXPECT_EQ(r.inherent_cycles, 270u);
  EXPECT_LE(r.inherent_cycles, r.makespan);
  EXPECT_GE(r.inherent_cycles, r.longest_task);
}

TEST(CriticalPath, IncompleteTasksAreExcluded) {
  std::vector<runtime::Task> tasks;
  tasks.push_back(make_task(0, {}, 0, 100, 10, 90, 40));
  tasks.push_back(make_task(1, {0}, 100, 900, 0, 0, 0));
  tasks[1].state = runtime::TaskState::Running;  // never finished
  const CriticalPathReport r = analyze_critical_path(tasks);
  EXPECT_EQ(r.tasks_done, 1u);
  EXPECT_EQ(r.makespan, 100u);
  EXPECT_EQ(r.realized_cycles, 100u);

  const CriticalPathReport empty = analyze_critical_path({});
  EXPECT_EQ(empty.tasks_done, 0u);
  EXPECT_EQ(empty.makespan, 0u);
  EXPECT_TRUE(empty.path.empty());
}

TEST(CriticalPath, FullRunBoundsAndExactDecomposition) {
  for (const auto kind :
       {system::PolicyKind::SNuca, system::PolicyKind::TdNuca}) {
    system::TiledSystem sys(cfg_for(kind));
    tiny_program(sys, 16);
    const Cycle makespan = sys.run(/*cycle_limit=*/50'000'000);
    ASSERT_TRUE(sys.completed());

    const CriticalPathReport r =
        analyze_critical_path(sys.runtime().tasks());
    EXPECT_EQ(r.tasks_done, 16u);
    EXPECT_EQ(r.makespan, sys.runtime().makespan());
    EXPECT_LE(r.makespan, makespan);
    EXPECT_EQ(r.realized_cycles, r.makespan);
    EXPECT_EQ(r.dep_wait + r.runtime_overhead + r.compute + r.memory_stall,
              r.makespan)
        << system::to_string(kind);
    EXPECT_GT(r.compute, 0u);
    EXPECT_GE(r.inherent_cycles, r.longest_task);
    EXPECT_LE(r.inherent_cycles, r.makespan);
    EXPECT_FALSE(r.path.empty());
    EXPECT_NE(r.report_json().find("\"realized\""), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Atomic report writing
// ---------------------------------------------------------------------------

TEST(AtomicWrite, WritesCreatesAndOverwrites) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("tdn_test_latency_" + std::to_string(::getpid()));
  const std::string nested = (dir / "a" / "b" / "report.json").string();
  EXPECT_TRUE(harness::atomic_write_file(nested, "{\"v\":1}\n"));
  {
    std::ifstream in(nested);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "{\"v\":1}\n");
  }
  // Overwrite is atomic: the new content fully replaces the old.
  EXPECT_TRUE(harness::atomic_write_file(nested, "{\"v\":2}\n"));
  {
    std::ifstream in(nested);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "{\"v\":2}\n");
  }
  // No temp files left behind.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir / "a" / "b"))
    ++entries;
  EXPECT_EQ(entries, 1u);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}
