// Determinism lock-in: end-to-end golden fingerprints and metric hashes.
//
// The simulation substrate (event queue, coherence, NoC) is allowed to be
// rewritten for speed, but never to change a single simulated cycle. These
// goldens pin one workload per NUCA policy: if any of them moves, either
// the metric schema changed on purpose (bump the fingerprint version in
// RunConfig::fingerprint and regenerate below) or determinism regressed.
//
// Regenerate by printing cfg.fingerprint() and the fnv1a64 of the
// precision-17 "key,value\n" serialization of RunResult::metrics for each
// case (scale=0.25, defaults otherwise, cache disabled).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "common/prng.hpp"
#include "harness/runner.hpp"

namespace tdn {
namespace {

std::uint64_t metrics_hash(const std::map<std::string, double>& m) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& [k, v] : m) os << k << ',' << v << '\n';
  const std::string s = os.str();
  return fnv1a64(s.data(), s.size());
}

struct GoldenCase {
  const char* workload;
  system::PolicyKind policy;
  std::uint64_t fingerprint;
  std::uint64_t metrics;
};

// Schema v8 goldens (v8 added the tdn::vm options segment — disabled runs
// carry the "off" sentinel — and the always-present mem.* per-core TLB /
// allocator keys plus tdnuca.translate_*, so both the fingerprints and the
// metric hashes moved; every v7 metric key kept its exact value, verified
// key-by-key against the seed build).
const GoldenCase kGoldens[] = {
    {"gauss", system::PolicyKind::SNuca, 0x917e4b660d1975ddull,
     0xb4d29d2e391d7bf8ull},
    {"histo", system::PolicyKind::RNuca, 0xdf544619f4ad4980ull,
     0xa32be5730695fe6full},
    {"jacobi", system::PolicyKind::TdNuca, 0x511cb6ff7d847ddeull,
     0xf2def87b56b8b1b1ull},
};

harness::RunConfig golden_config(const GoldenCase& c) {
  harness::RunConfig cfg;
  cfg.workload = c.workload;
  cfg.policy = c.policy;
  cfg.params.scale = 0.25;
  return cfg;
}

TEST(Determinism, FingerprintGoldensV8) {
  for (const GoldenCase& c : kGoldens) {
    const harness::RunConfig cfg = golden_config(c);
    EXPECT_EQ(cfg.fingerprint(), c.fingerprint)
        << c.workload << "/" << system::to_string(c.policy) << " fingerprint 0x"
        << std::hex << cfg.fingerprint();
  }
}

TEST(Determinism, MetricsGoldensV8) {
  for (const GoldenCase& c : kGoldens) {
    const harness::RunConfig cfg = golden_config(c);
    const harness::RunResult r =
        harness::run_experiment(cfg, /*use_cache=*/false);
    EXPECT_EQ(metrics_hash(r.metrics), c.metrics)
        << c.workload << "/" << system::to_string(c.policy)
        << " metrics hash 0x" << std::hex << metrics_hash(r.metrics)
        << " over " << std::dec << r.metrics.size() << " keys";
  }
}

// Latency attribution observes and never perturbs: with the report sink on
// (which enables attribution, epoch-free), every metric hashes to the same
// committed golden as the plain run. This is the obs-on/obs-off identity
// the v2 observability layer promises.
TEST(Determinism, MetricsGoldensV8WithAttributionEnabled) {
  const GoldenCase& c = kGoldens[0];  // gauss / S-NUCA
  harness::RunConfig cfg = golden_config(c);
  cfg.obs.latency_report_path =
      "/tmp/tdn_test_determinism_report_" + std::to_string(::getpid()) +
      ".json";
  const harness::RunResult r =
      harness::run_experiment(cfg, /*use_cache=*/false);
  EXPECT_EQ(metrics_hash(r.metrics), c.metrics)
      << "attribution-enabled run drifted from the attribution-off golden";
  std::remove(cfg.obs.latency_report_path.c_str());
}

// Two fresh in-process runs of the same config are bit-identical, key by
// key — a sharper diagnostic than the hash when something does drift.
TEST(Determinism, RepeatRunsBitIdentical) {
  const harness::RunConfig cfg = golden_config(kGoldens[2]);  // TD-NUCA
  const harness::RunResult a =
      harness::run_experiment(cfg, /*use_cache=*/false);
  const harness::RunResult b =
      harness::run_experiment(cfg, /*use_cache=*/false);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (const auto& [key, value] : a.metrics) {
    const auto it = b.metrics.find(key);
    ASSERT_NE(it, b.metrics.end()) << key;
    EXPECT_EQ(value, it->second) << key;
  }
}

}  // namespace
}  // namespace tdn
