// Determinism lock-in: end-to-end golden fingerprints and metric hashes.
//
// The simulation substrate (event queue, coherence, NoC) is allowed to be
// rewritten for speed, but never to change a single simulated cycle. These
// goldens pin one workload per NUCA policy: if any of them moves, either
// the metric schema changed on purpose (bump the fingerprint version in
// RunConfig::fingerprint and regenerate below) or determinism regressed.
//
// Regenerate by printing cfg.fingerprint() and the fnv1a64 of the
// precision-17 "key,value\n" serialization of RunResult::metrics for each
// case (scale=0.25, defaults otherwise, cache disabled).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>

#include "common/prng.hpp"
#include "harness/runner.hpp"

namespace tdn {
namespace {

std::uint64_t metrics_hash(const std::map<std::string, double>& m) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& [k, v] : m) os << k << ',' << v << '\n';
  const std::string s = os.str();
  return fnv1a64(s.data(), s.size());
}

struct GoldenCase {
  const char* workload;
  system::PolicyKind policy;
  std::uint64_t fingerprint;
  std::uint64_t metrics;
};

// Schema v7 goldens (v7 added the serving options segment; closed runs
// carry the "-" sentinel, so only the fingerprints moved — the metric
// hashes are untouched from v6).
const GoldenCase kGoldens[] = {
    {"gauss", system::PolicyKind::SNuca, 0x40be0eec505d0684ull,
     0x1a92393edf4ca81full},
    {"histo", system::PolicyKind::RNuca, 0x1380c2d32835adbbull,
     0x7cb836047f112f48ull},
    {"jacobi", system::PolicyKind::TdNuca, 0xf1fe5b2c58d5ad0bull,
     0x1589fc6404d3e126ull},
};

harness::RunConfig golden_config(const GoldenCase& c) {
  harness::RunConfig cfg;
  cfg.workload = c.workload;
  cfg.policy = c.policy;
  cfg.params.scale = 0.25;
  return cfg;
}

TEST(Determinism, FingerprintGoldensV7) {
  for (const GoldenCase& c : kGoldens) {
    const harness::RunConfig cfg = golden_config(c);
    EXPECT_EQ(cfg.fingerprint(), c.fingerprint)
        << c.workload << "/" << system::to_string(c.policy) << " fingerprint 0x"
        << std::hex << cfg.fingerprint();
  }
}

TEST(Determinism, MetricsGoldensV7) {
  for (const GoldenCase& c : kGoldens) {
    const harness::RunConfig cfg = golden_config(c);
    const harness::RunResult r =
        harness::run_experiment(cfg, /*use_cache=*/false);
    EXPECT_EQ(metrics_hash(r.metrics), c.metrics)
        << c.workload << "/" << system::to_string(c.policy)
        << " metrics hash 0x" << std::hex << metrics_hash(r.metrics)
        << " over " << std::dec << r.metrics.size() << " keys";
  }
}

// Latency attribution observes and never perturbs: with the report sink on
// (which enables attribution, epoch-free), every metric hashes to the same
// committed golden as the plain run. This is the obs-on/obs-off identity
// the v2 observability layer promises.
TEST(Determinism, MetricsGoldensV7WithAttributionEnabled) {
  const GoldenCase& c = kGoldens[0];  // gauss / S-NUCA
  harness::RunConfig cfg = golden_config(c);
  cfg.obs.latency_report_path =
      "/tmp/tdn_test_determinism_report_" + std::to_string(::getpid()) +
      ".json";
  const harness::RunResult r =
      harness::run_experiment(cfg, /*use_cache=*/false);
  EXPECT_EQ(metrics_hash(r.metrics), c.metrics)
      << "attribution-enabled run drifted from the attribution-off golden";
  std::remove(cfg.obs.latency_report_path.c_str());
}

// Two fresh in-process runs of the same config are bit-identical, key by
// key — a sharper diagnostic than the hash when something does drift.
TEST(Determinism, RepeatRunsBitIdentical) {
  const harness::RunConfig cfg = golden_config(kGoldens[2]);  // TD-NUCA
  const harness::RunResult a =
      harness::run_experiment(cfg, /*use_cache=*/false);
  const harness::RunResult b =
      harness::run_experiment(cfg, /*use_cache=*/false);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (const auto& [key, value] : a.metrics) {
    const auto it = b.metrics.find(key);
    ASSERT_NE(it, b.metrics.end()) << key;
    EXPECT_EQ(value, it->second) << key;
  }
}

}  // namespace
}  // namespace tdn
