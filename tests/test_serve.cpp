// tdn::serve — arrival DSL, admission control, QoS accounting and the
// serving determinism contract (docs/serving.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/require.hpp"
#include "harness/runner.hpp"
#include "harness/sweep_runner.hpp"
#include "multi/mix.hpp"
#include "obs/recorder.hpp"
#include "serve/arrival.hpp"
#include "serve/options.hpp"
#include "serve/serve_system.hpp"

using namespace tdn;
using namespace tdn::serve;

namespace {

workloads::WorkloadParams small_params() {
  workloads::WorkloadParams p;
  p.scale = 0.1;
  return p;
}

ServeOptions light_load() {
  ServeOptions o;
  o.arrival = "fixed:gap=60k";
  o.horizon = 300'000;
  o.request_scale = 0.05;
  return o;
}

ServeOptions overload() {
  ServeOptions o;
  o.arrival = "fixed:gap=3k";
  o.horizon = 150'000;
  o.max_pending = 2;
  o.request_scale = 0.05;
  return o;
}

}  // namespace

// --- arrival DSL ----------------------------------------------------------

TEST(ServeArrival, ParsesEveryKindWithSuffixes) {
  const ArrivalSpec p = ArrivalSpec::parse("poisson:gap=40k");
  EXPECT_EQ(p.kind, ArrivalKind::Poisson);
  EXPECT_EQ(p.gap, 40'000u);

  const ArrivalSpec m = ArrivalSpec::parse("mmpp:gap=2M,burst=8k,dwell=120k");
  EXPECT_EQ(m.kind, ArrivalKind::Mmpp);
  EXPECT_EQ(m.gap, 2'000'000u);
  EXPECT_EQ(m.burst, 8'000u);
  EXPECT_EQ(m.dwell, 120'000u);

  const ArrivalSpec d = ArrivalSpec::parse("diurnal:gap=40k,amp=0.5,period=300k");
  EXPECT_EQ(d.kind, ArrivalKind::Diurnal);
  EXPECT_DOUBLE_EQ(d.amp, 0.5);
  EXPECT_EQ(d.period, 300'000u);

  // Bare kind uses the documented defaults.
  const ArrivalSpec f = ArrivalSpec::parse("fixed");
  EXPECT_EQ(f.kind, ArrivalKind::Fixed);
  EXPECT_EQ(f.gap, 40'000u);
}

TEST(ServeArrival, RejectsMalformedSpecsLoudly) {
  EXPECT_THROW(ArrivalSpec::parse(""), RequireError);
  EXPECT_THROW(ArrivalSpec::parse("weibull:gap=40k"), RequireError);    // kind
  EXPECT_THROW(ArrivalSpec::parse("poisson:rate=40k"), RequireError);   // key
  EXPECT_THROW(ArrivalSpec::parse("poisson:gap=0"), RequireError);      // zero
  EXPECT_THROW(ArrivalSpec::parse("poisson:gap"), RequireError);        // no =
  EXPECT_THROW(ArrivalSpec::parse("poisson:gap=4x"), RequireError);     // junk
  EXPECT_THROW(ArrivalSpec::parse("diurnal:gap=40k,amp=1.5"), RequireError);
  EXPECT_THROW(ArrivalSpec::parse("mmpp:gap=40k,dwell=0"), RequireError);
}

TEST(ServeArrival, TraceIsDeterministicAndSeedSensitive) {
  const ArrivalSpec spec = ArrivalSpec::parse("poisson:gap=10k");
  const std::vector<unsigned> w{1, 1};
  const auto a = spec.generate(400'000, w, 7);
  const auto b = spec.generate(400'000, w, 7);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cycle, b[i].cycle);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
  }
  // A different seed (and a different kind at the same mean gap) draw from
  // different streams.
  const auto c = spec.generate(400'000, w, 8);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].cycle != c[i].cycle;
  EXPECT_TRUE(differs);

  // Every arrival is inside the horizon, in non-decreasing order, with a
  // valid tenant.
  Cycle prev = 0;
  for (const Arrival& ar : a) {
    EXPECT_LT(ar.cycle, 400'000u);
    EXPECT_GE(ar.cycle, prev);
    EXPECT_LT(ar.tenant, 2u);
    prev = ar.cycle;
  }
}

TEST(ServeArrival, WeightsSkewTheTenantDraw) {
  const ArrivalSpec spec = ArrivalSpec::parse("poisson:gap=2k");
  const auto trace = spec.generate(800'000, {9, 1}, 7);
  ASSERT_GT(trace.size(), 100u);
  std::size_t t0 = 0;
  for (const Arrival& a : trace) t0 += a.tenant == 0 ? 1 : 0;
  const double share = static_cast<double>(t0) / static_cast<double>(trace.size());
  EXPECT_GT(share, 0.8);
  EXPECT_LT(share, 1.0);
}

TEST(ServeArrival, ParseWeightsValidates) {
  EXPECT_EQ(parse_weights("", 3), (std::vector<unsigned>{1, 1, 1}));
  EXPECT_EQ(parse_weights("3:1", 2), (std::vector<unsigned>{3, 1}));
  EXPECT_THROW(parse_weights("3:1", 3), RequireError);  // count mismatch
  EXPECT_THROW(parse_weights("3:0", 2), RequireError);  // zero weight
  EXPECT_THROW(parse_weights("3:x", 2), RequireError);  // junk
}

// --- admission control / QoS invariants -----------------------------------

TEST(ServeSystemTest, LightLoadCompletesEveryRequest) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  ServeSystem sys(cfg, multi::MixSpec::parse("gauss"), light_load());
  sys.build(small_params());
  const Cycle makespan = sys.run();
  ASSERT_TRUE(sys.completed());
  EXPECT_GT(sys.offered(), 0u);
  EXPECT_EQ(sys.shed(), 0u);
  EXPECT_EQ(sys.requests_completed(), sys.offered());
  EXPECT_GT(makespan, 0u);

  const auto reg = sys.collect_stats();
  EXPECT_EQ(reg.get("serve.offered"),
            reg.get("serve.shed") + reg.get("serve.completed"));
  EXPECT_EQ(reg.get("serve.shed_rate"), 0.0);
  EXPECT_GT(reg.get("serve.sojourn.p99"), 0.0);
  EXPECT_GE(reg.get("serve.sojourn.p999"), reg.get("serve.sojourn.p99"));
  EXPECT_GT(reg.get("serve.goodput"), 0.0);
  EXPECT_GT(reg.get("tasks.completed"), 0.0);
}

TEST(ServeSystemTest, OverloadShedsAndRespectsQueueBound) {
  for (const AdmissionPolicy pol :
       {AdmissionPolicy::Reject, AdmissionPolicy::DropOldest}) {
    system::SystemConfig cfg;
    cfg.policy = system::PolicyKind::SNuca;
    ServeOptions opts = overload();
    opts.admission = pol;
    ServeSystem sys(cfg, multi::MixSpec::parse("gauss"), opts);
    sys.build(small_params());
    sys.run();
    ASSERT_TRUE(sys.completed()) << to_string(pol);
    // Offered load far beyond capacity: admission must shed.
    EXPECT_GT(sys.shed(), 0u) << to_string(pol);
    EXPECT_EQ(sys.offered(), sys.shed() + sys.requests_completed())
        << to_string(pol);
    EXPECT_LE(sys.queue_max_depth(), opts.max_pending) << to_string(pol);
    // Per-tenant counters sum to the totals.
    const auto reg = sys.collect_stats();
    EXPECT_EQ(reg.get("serve.tenant0.offered"), reg.get("serve.offered"));
    EXPECT_EQ(reg.get("serve.tenant0.shed"), reg.get("serve.shed"));
  }
}

TEST(ServeSystemTest, DropOldestBeatsRejectOnTailSojourn) {
  // Under the same overload, shedding the stalest queued request instead of
  // the newcomer serves fresher work: max queue wait cannot be worse.
  auto p99_wait = [](AdmissionPolicy pol) {
    system::SystemConfig cfg;
    cfg.policy = system::PolicyKind::SNuca;
    ServeOptions opts;
    opts.arrival = "fixed:gap=3k";
    opts.horizon = 150'000;
    opts.max_pending = 4;
    opts.admission = pol;
    ServeSystem sys(cfg, multi::MixSpec::parse("gauss"), opts);
    sys.build(small_params());
    sys.run();
    return sys.collect_stats().get("serve.queue_wait.p99");
  };
  EXPECT_LE(p99_wait(AdmissionPolicy::DropOldest),
            p99_wait(AdmissionPolicy::Reject));
}

TEST(ServeSystemTest, TwoTenantsGetSeparateQos) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  ServeOptions opts = light_load();
  opts.arrival = "poisson:gap=25k";
  opts.weights = "3:1";
  ServeSystem sys(cfg, multi::MixSpec::parse("gauss+histo"), opts);
  sys.build(small_params());
  sys.run();
  ASSERT_TRUE(sys.completed());
  const auto reg = sys.collect_stats();
  EXPECT_EQ(reg.get("serve.tenant0.offered") + reg.get("serve.tenant1.offered"),
            reg.get("serve.offered"));
  EXPECT_EQ(reg.get("serve.tenant0.completed") +
                reg.get("serve.tenant1.completed"),
            reg.get("serve.completed"));
  // The 3:1 weighting shows in the offered split.
  EXPECT_GT(reg.get("serve.tenant0.offered"),
            reg.get("serve.tenant1.offered"));
}

// Observation never perturbs: a serving run with every Recorder sink on
// produces metric-for-metric identical stats to a plain run, while the
// serving spans/series/heatmaps actually capture data.
TEST(ServeSystemTest, RecorderObservesWithoutPerturbing) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  const multi::MixSpec mix = multi::MixSpec::parse("gauss+histo");

  ServeSystem plain(cfg, mix, light_load());
  plain.build(small_params());
  plain.run();
  const auto base = plain.collect_stats().all();

  obs::RecorderConfig rc;
  rc.trace = rc.epochs = rc.heatmaps = true;
  rc.epoch_cycles = 20'000;
  obs::Recorder rec(rc);
  ServeSystem observed(cfg, mix, light_load(), &rec);
  observed.build(small_params());
  observed.run();

  EXPECT_EQ(base, observed.collect_stats().all());
  EXPECT_GT(rec.trace_events(), 0u);
  EXPECT_GT(rec.epoch_series(), 0u);
  EXPECT_GT(rec.heatmap_count(), 0u);
}

TEST(ServeSystemTest, RejectsBadShapes) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  const multi::MixSpec gauss = multi::MixSpec::parse("gauss");

  ServeOptions no_arrival;
  EXPECT_THROW({ ServeSystem bad(cfg, gauss, no_arrival); }, RequireError);

  ServeOptions odd_slots = light_load();
  odd_slots.slots = 3;  // 4-row mesh cannot split into 3 row partitions
  EXPECT_THROW({ ServeSystem bad(cfg, gauss, odd_slots); }, RequireError);

  system::SystemConfig dry = cfg;
  dry.policy = system::PolicyKind::TdNucaDryRun;
  EXPECT_THROW({ ServeSystem bad(dry, gauss, light_load()); }, RequireError);

  system::SystemConfig rnuca = cfg;
  rnuca.policy = system::PolicyKind::RNuca;
  ServeOptions adaptive = light_load();
  adaptive.adaptive = true;
  EXPECT_THROW({ ServeSystem bad(rnuca, gauss, adaptive); }, RequireError);
}

TEST(ServeSystemTest, AdaptiveSwitchingRunsAndCounts) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  ServeOptions opts;
  // Tenant 1 dominates arrivals, so tenant 0's epoch share sits below the
  // threshold and the very first sampled epoch switches to R-NUCA.
  opts.arrival = "poisson:gap=8k";
  opts.horizon = 200'000;
  opts.weights = "1:9";
  opts.adaptive = true;
  opts.epoch = 20'000;
  opts.switch_threshold = 0.5;
  ServeSystem sys(cfg, multi::MixSpec::parse("gauss+histo"), opts);
  sys.build(small_params());
  sys.run();
  ASSERT_TRUE(sys.completed());
  EXPECT_GE(sys.policy_switches(), 1u);
  const auto reg = sys.collect_stats();
  EXPECT_EQ(reg.get("serve.policy_switches"),
            static_cast<double>(sys.policy_switches()));
}

// --- harness integration: fingerprints, cache keys, sweeps ----------------

TEST(ServeHarness, FingerprintSeparatesServingOptions) {
  harness::RunConfig base;
  base.workload = "gauss";
  base.policy = system::PolicyKind::TdNuca;
  base.serve.arrival = "poisson:gap=40k";

  harness::RunConfig closed = base;
  closed.serve.arrival.clear();  // ordinary closed run
  harness::RunConfig other_arrival = base;
  other_arrival.serve.arrival = "mmpp:gap=40k";
  harness::RunConfig other_admission = base;
  other_admission.serve.admission = AdmissionPolicy::DropOldest;
  harness::RunConfig other_slots = base;
  other_slots.serve.slots = 4;
  harness::RunConfig adaptive = base;
  adaptive.serve.adaptive = true;

  EXPECT_NE(base.fingerprint(), closed.fingerprint());
  EXPECT_NE(base.fingerprint(), other_arrival.fingerprint());
  EXPECT_NE(base.fingerprint(), other_admission.fingerprint());
  EXPECT_NE(base.fingerprint(), other_slots.fingerprint());
  EXPECT_NE(base.fingerprint(), adaptive.fingerprint());
}

TEST(ServeHarness, FingerprintGoldenV8) {
  // Golden hash of the default serving config under schema v8 — the serving
  // twin of MultiProgram.FingerprintGoldenV8. Regenerate by printing
  // cfg.fingerprint() for this exact config.
  harness::RunConfig cfg;
  cfg.workload = "gauss+histo";
  cfg.policy = system::PolicyKind::TdNuca;
  cfg.serve.arrival = "poisson:gap=40k";
  EXPECT_EQ(cfg.fingerprint(), 0x93285b9d3afc1e37ull)
      << std::hex << cfg.fingerprint();
}

TEST(ServeHarness, RunExperimentRoutesToServeSystem) {
  harness::RunConfig cfg;
  cfg.workload = "gauss";
  cfg.policy = system::PolicyKind::TdNuca;
  cfg.params = small_params();
  cfg.serve = light_load();
  const auto res = harness::run_experiment(cfg, /*use_cache=*/false);
  EXPECT_GT(res.get("serve.offered"), 0.0);
  EXPECT_GT(res.get("serve.goodput"), 0.0);
  EXPECT_GT(res.get("sim.cycles"), 0.0);
}

TEST(ServeHarness, SerialAndParallelServeSweepsBitIdentical) {
  // The acceptance sweep: >= 2 arrival processes x >= 2 policies through
  // SweepRunner, serial vs --jobs 4 bit-identical including the tails.
  std::vector<harness::RunConfig> cfgs;
  for (const char* arrival : {"poisson:gap=30k", "mmpp:gap=60k,burst=6k,dwell=50k"}) {
    for (const auto pol :
         {system::PolicyKind::SNuca, system::PolicyKind::TdNuca}) {
      harness::RunConfig cfg;
      cfg.workload = "gauss+histo";
      cfg.policy = pol;
      cfg.params = small_params();
      cfg.serve.arrival = arrival;
      cfg.serve.horizon = 150'000;
      cfgs.push_back(std::move(cfg));
    }
  }
  harness::SweepOptions serial_opts, par_opts;
  serial_opts.jobs = 1;
  serial_opts.use_cache = false;
  par_opts.jobs = 4;
  par_opts.use_cache = false;
  const auto serial = harness::SweepRunner(serial_opts).run(cfgs);
  const auto parallel = harness::SweepRunner(par_opts).run(cfgs);
  ASSERT_EQ(serial.size(), cfgs.size());
  ASSERT_EQ(parallel.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    // std::map equality compares every key and every double bit-exactly —
    // including serve.sojourn.p99/p999 and the per-tenant tails.
    EXPECT_EQ(serial[i].metrics, parallel[i].metrics) << "run " << i;
    EXPECT_GT(serial[i].get("serve.sojourn.p99"), 0.0) << "run " << i;
    ASSERT_TRUE(serial[i].has("serve.sojourn.p999")) << "run " << i;
    ASSERT_TRUE(serial[i].has("serve.tenant1.sojourn.p99")) << "run " << i;
  }
}

TEST(ServeHarness, RepeatedRunsAreBitIdentical) {
  harness::RunConfig cfg;
  cfg.workload = "gauss";
  cfg.policy = system::PolicyKind::TdNuca;
  cfg.params = small_params();
  cfg.serve = light_load();
  cfg.serve.arrival = "diurnal:gap=30k,amp=0.8,period=100k";
  const auto a = harness::run_experiment(cfg, /*use_cache=*/false);
  const auto b = harness::run_experiment(cfg, /*use_cache=*/false);
  EXPECT_EQ(a.metrics, b.metrics);
}
