// Tests of tdn::obs — the trace / epoch / heatmap recorder — and its
// integration with the full system: valid Chrome-trace JSON with monotone
// timestamps, epoch row-count arithmetic, heatmap shapes, harness artifact
// writing, and the determinism contract (identical Registry metrics with
// recording on and off).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/require.hpp"
#include "harness/runner.hpp"
#include "obs/recorder.hpp"
#include "sim/event_queue.hpp"
#include "system/tiled_system.hpp"

using namespace tdn;
using namespace tdn::obs;

namespace {

/// Minimal recursive-descent JSON syntax checker — enough to catch broken
/// escaping, trailing commas and unbalanced brackets in the emitters.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool valid() {
    ws();
    if (!value()) return false;
    ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    ws();
    if (peek('}')) return true;
    while (true) {
      ws();
      if (!string()) return false;
      ws();
      if (!expect(':')) return false;
      ws();
      if (!value()) return false;
      ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    ws();
    if (peek(']')) return true;
    while (true) {
      ws();
      if (!value()) return false;
      ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (!expect('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    return expect('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek('-')) {}
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }
  void ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// All "ts": values in document order.
std::vector<long long> extract_ts(const std::string& json) {
  std::vector<long long> out;
  std::size_t pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    out.push_back(std::stoll(json.substr(pos)));
  }
  return out;
}

void tiny_program(system::TiledSystem& sys, int tasks = 8) {
  auto& rt = sys.runtime();
  for (int i = 0; i < tasks; ++i) {
    const AddrRange r = sys.vspace().allocate(16 * kKiB, 64, "r");
    const DepId d = rt.region(r, "r");
    core::TaskProgram p;
    core::AccessPhase ph;
    ph.range = r;
    ph.kind = (i % 2 != 0) ? AccessKind::Write : AccessKind::Read;
    p.add_phase(ph);
    rt.create_task("t" + std::to_string(i),
                   {{d, i % 2 != 0 ? DepUse::Out : DepUse::In}},
                   std::move(p));
  }
}

RecorderConfig all_on(Cycle epoch = 5'000) {
  RecorderConfig rc;
  rc.trace = true;
  rc.epochs = true;
  rc.heatmaps = true;
  rc.trace_coherence = true;
  rc.epoch_cycles = epoch;
  return rc;
}

struct TmpDir {
  std::filesystem::path dir;
  TmpDir() {
    dir = std::filesystem::temp_directory_path() /
          ("tdn_test_obs_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
  }
  ~TmpDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  std::string path(const char* name) const { return (dir / name).string(); }
};

}  // namespace

// ---------------------------------------------------------------------------
// Recorder unit behaviour
// ---------------------------------------------------------------------------

TEST(Recorder, DisabledRecordsNothing) {
  Recorder rec;  // default config: everything off
  rec.span(0, "task", "t", 0, 10, "\"a\":1");
  rec.instant(1, "coherence", "GetS");
  rec.set_track_name(0, "core 0");
  rec.add_series("s", [] { return 1.0; });
  rec.add_heatmap("h", 2, 2, [] { return std::vector<double>(4, 0.0); });
  EXPECT_EQ(rec.trace_events(), 0u);
  EXPECT_EQ(rec.epoch_series(), 0u);
  EXPECT_EQ(rec.heatmap_count(), 0u);
  sim::EventQueue eq;
  rec.arm(eq);
  EXPECT_EQ(eq.pending(), 0u);
}

TEST(Recorder, TraceJsonIsValidAndSorted) {
  RecorderConfig rc;
  rc.trace = true;
  Recorder rec(rc);
  rec.set_track_name(0, "core \"zero\"\n");  // exercises escaping
  // Emit out of order: trace_json must sort by ts.
  rec.span(0, "task", "late", 500, 10);
  rec.span(0, "task", "early", 5, 20, "\"id\":1");
  rec.instant(1, "runtime", "mid");
  const std::string json = rec.trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  const auto ts = extract_ts(json);
  ASSERT_EQ(ts.size(), 3u);  // metadata events carry no ts
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);
}

TEST(Recorder, EpochSamplerRowArithmetic) {
  RecorderConfig rc;
  rc.epochs = true;
  rc.epoch_cycles = 100;
  Recorder rec(rc);
  int calls = 0;
  rec.add_series("n", [&] { return static_cast<double>(++calls); });

  sim::EventQueue eq;
  rec.attach_clock(&eq);
  // One real event every 90 cycles, ten of them: makespan M = 900.
  for (int i = 1; i <= 10; ++i) eq.schedule_at(i * 90, [] {});
  rec.arm(eq);
  eq.run();

  // Ticks land on multiples of epoch_cycles; the sampler keeps ticking
  // while real events are pending plus one tail sample, so with M = 900 and
  // N = 100 we get rows at 100..900 or 100..1000.
  const std::size_t rows = rec.epoch_rows();
  EXPECT_TRUE(rows == 9 || rows == 10) << rows;
  const std::string csv = rec.epochs_csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "cycle,n");
  // Row i carries cycle (i+1)*N.
  std::size_t line_start = csv.find('\n') + 1;
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t comma = csv.find(',', line_start);
    EXPECT_EQ(csv.substr(line_start, comma - line_start),
              std::to_string((i + 1) * 100));
    line_start = csv.find('\n', comma) + 1;
  }
  EXPECT_TRUE(JsonChecker(rec.epochs_json()).valid());
}

TEST(Recorder, DoubleArmDoesNotDuplicateTickChain) {
  RecorderConfig rc;
  rc.epochs = true;
  rc.epoch_cycles = 100;
  Recorder rec(rc);
  int probes = 0;
  rec.add_series("n", [&] { return static_cast<double>(++probes); });

  sim::EventQueue eq;
  rec.attach_clock(&eq);
  for (int i = 1; i <= 5; ++i) eq.schedule_at(i * 100 - 10, [] {});
  rec.arm(eq);
  // Re-arming with the tick still queued (e.g. a resumed run) must not
  // start a second tick chain: that would double every epoch row.
  rec.arm(eq);
  rec.arm(eq);
  EXPECT_EQ(eq.observer_pending(), 1u);
  eq.run();
  EXPECT_EQ(rec.epoch_rows(), 5u);  // ticks at 100..500, sampled once each
  EXPECT_EQ(probes, 5);
}

TEST(Recorder, ReArmAfterDroppedTickResumesSampling) {
  RecorderConfig rc;
  rc.epochs = true;
  rc.epoch_cycles = 100;
  Recorder rec(rc);
  int probes = 0;
  rec.add_series("n", [&] { return static_cast<double>(++probes); });

  sim::EventQueue eq;
  rec.attach_clock(&eq);
  eq.schedule_at(90, [] {});
  rec.arm(eq);
  // The cycle-limited run consumes the real event and drops the pending
  // observer tick at 100.
  eq.run_until(95);
  EXPECT_EQ(eq.observer_dropped(), 1u);
  EXPECT_EQ(eq.observer_pending(), 0u);
  EXPECT_EQ(rec.epoch_rows(), 0u);

  // Resuming: arm() detects the dropped tick and starts a fresh chain —
  // without the guard it would either stay dead or double-sample.
  eq.schedule_at(290, [] {});
  rec.arm(eq);
  EXPECT_EQ(eq.observer_pending(), 1u);
  eq.run();
  // Fresh chain from cycle 90: ticks at 190 (real event still pending) and
  // the 290 tail sample.
  EXPECT_EQ(rec.epoch_rows(), 2u);
  EXPECT_EQ(probes, 2);
}

TEST(Recorder, SamplerDoesNotPerturbEventAccounting) {
  sim::EventQueue eq;
  int ran = 0;
  eq.schedule_at(50, [&] { ++ran; });
  eq.schedule_at(250, [&] { ++ran; });

  RecorderConfig rc;
  rc.epochs = true;
  rc.epoch_cycles = 100;
  Recorder rec(rc);
  rec.attach_clock(&eq);
  rec.add_series("x", [] { return 0.0; });
  rec.arm(eq);

  eq.run();
  EXPECT_EQ(ran, 2);
  // Observer ticks are excluded from the executed() count benchmarks export.
  EXPECT_EQ(eq.executed(), 2u);
  EXPECT_GE(rec.epoch_rows(), 2u);
}

TEST(Recorder, HeatmapShapeAndOutput) {
  RecorderConfig rc;
  rc.heatmaps = true;
  Recorder rec(rc);
  rec.add_heatmap("grid", 2, 3, [] {
    return std::vector<double>{1, 2, 3, 4, 5, 6.5};
  });
  EXPECT_EQ(rec.heatmap_count(), 1u);
  const std::string text = rec.heatmaps_text();
  EXPECT_NE(text.find("# grid (2x3)"), std::string::npos);
  EXPECT_TRUE(JsonChecker(rec.heatmaps_json()).valid());
  EXPECT_NE(rec.heatmaps_json().find("\"w\":2,\"h\":3"), std::string::npos);

  Recorder bad(rc);
  bad.add_heatmap("wrong", 2, 2, [] { return std::vector<double>(3, 0.0); });
  EXPECT_THROW(bad.heatmaps_text(), RequireError);
}

// ---------------------------------------------------------------------------
// Full-system integration
// ---------------------------------------------------------------------------

TEST(ObsSystem, FullRunProducesAllSinks) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  Recorder rec(all_on(1'000));
  system::TiledSystem sys(cfg, &rec);
  tiny_program(sys, 16);
  const Cycle makespan = sys.run(/*cycle_limit=*/50'000'000);
  ASSERT_GT(makespan, 0u);

  // Trace: valid JSON, one span per task, monotone timestamps.
  const std::string json = rec.trace_json();
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_GE(rec.trace_events(), 16u);
  EXPECT_NE(json.find("\"cat\":\"task\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"isa\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flush\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"coherence\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  const auto ts = extract_ts(json);
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_LE(ts[i - 1], ts[i]);

  // Epochs: ticks continue at least until the makespan (tasks keep real
  // events pending), and at most a few epochs longer while the end-of-run
  // flush traffic drains from the queue.
  const std::size_t min_rows = (makespan + 999) / 1'000;
  EXPECT_GE(rec.epoch_rows(), min_rows)
      << rec.epoch_rows() << " rows for makespan " << makespan;
  EXPECT_LE(rec.epoch_rows(), min_rows + 4)
      << rec.epoch_rows() << " rows for makespan " << makespan;
  // Per-bank hit-ratio and occupancy series for all 16 banks, plus RRT,
  // ready-queue, NoC and DRAM probes.
  EXPECT_GE(rec.epoch_series(), 2u * 16u + 16u + 2u);
  const std::string csv = rec.epochs_csv();
  EXPECT_NE(csv.find("llc.bank0.hit_ratio"), std::string::npos);
  EXPECT_NE(csv.find("llc.bank15.occupancy"), std::string::npos);
  EXPECT_NE(csv.find("rrt.core0.entries"), std::string::npos);
  EXPECT_NE(csv.find("runtime.ready_tasks"), std::string::npos);
  EXPECT_NE(csv.find("noc.t0.e.util"), std::string::npos);
  EXPECT_NE(csv.find("dram.mc0.backlog"), std::string::npos);

  // Heatmaps: 4x4 bank and link matrices.
  EXPECT_GE(rec.heatmap_count(), 7u);
  const std::string hm = rec.heatmaps_text();
  EXPECT_NE(hm.find("# llc_bank_accesses (4x4)"), std::string::npos);
  EXPECT_NE(hm.find("# noc_link_bytes_e (4x4)"), std::string::npos);
  EXPECT_TRUE(JsonChecker(rec.heatmaps_json()).valid());
}

TEST(ObsSystem, RecordingPreservesDeterminism) {
  for (const auto kind :
       {system::PolicyKind::SNuca, system::PolicyKind::TdNuca}) {
    system::SystemConfig cfg;
    cfg.policy = kind;

    system::TiledSystem plain(cfg);
    tiny_program(plain, 12);
    plain.run(/*cycle_limit=*/50'000'000);

    Recorder rec(all_on(500));
    system::TiledSystem recorded(cfg, &rec);
    tiny_program(recorded, 12);
    recorded.run(/*cycle_limit=*/50'000'000);

    // Bit-identical metrics: the recorder observes and never perturbs.
    EXPECT_EQ(plain.collect_stats().all(), recorded.collect_stats().all())
        << system::to_string(kind);
    EXPECT_GT(rec.trace_events(), 0u);
  }
}

TEST(ObsSystem, CycleLimitedRunDropsPendingSamplerTick) {
  system::SystemConfig cfg;
  Recorder rec(all_on(1'000));
  system::TiledSystem sys(cfg, &rec);
  tiny_program(sys, 4);
  // A generous limit: the run completes; the final rescheduled observer
  // tick (if any) past the makespan must not wedge or throw.
  const Cycle makespan = sys.run(/*cycle_limit=*/50'000'000);
  EXPECT_GT(makespan, 0u);
  EXPECT_TRUE(sys.completed());
}

// ---------------------------------------------------------------------------
// Harness plumbing
// ---------------------------------------------------------------------------

TEST(ObsHarness, RunExperimentWritesArtifacts) {
  TmpDir tmp;
  ::setenv("TDN_NO_CACHE", "1", 1);
  harness::RunConfig cfg;
  cfg.workload = "md5";
  cfg.policy = system::PolicyKind::TdNuca;
  cfg.params.scale = 0.1;
  cfg.obs.trace_path = tmp.path("trace.json");
  cfg.obs.epochs_csv_path = tmp.path("epochs.csv");
  cfg.obs.epochs_json_path = tmp.path("epochs.json");
  cfg.obs.heatmaps_path = tmp.path("heatmaps.txt");
  cfg.obs.heatmaps_json_path = tmp.path("heatmaps.json");
  cfg.obs.epoch_cycles = 2'000;

  harness::ObsArtifacts arts;
  const auto r = harness::run_experiment(cfg, /*use_cache=*/true, &arts);
  ::unsetenv("TDN_NO_CACHE");

  EXPECT_GT(r.get("sim.cycles"), 0.0);
  EXPECT_GT(arts.trace_events, 0u);
  EXPECT_GT(arts.epoch_rows, 0u);
  EXPECT_GT(arts.epoch_series, 0u);
  EXPECT_GT(arts.heatmaps, 0u);
  EXPECT_EQ(arts.files_written.size(), 5u);
  for (const std::string& f : arts.files_written) {
    EXPECT_TRUE(std::filesystem::exists(f)) << f;
    EXPECT_GT(std::filesystem::file_size(f), 0u) << f;
  }
  // The written trace parses.
  std::ifstream in(cfg.obs.trace_path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_TRUE(JsonChecker(ss.str()).valid());
}

TEST(ObsHarness, ObsOptionsMapToRecorderConfig) {
  harness::ObsOptions o;
  EXPECT_FALSE(o.any());
  EXPECT_FALSE(o.recorder_config().any());
  o.trace_path = "t.json";
  o.trace_coherence = true;
  o.epoch_cycles = 123;
  EXPECT_TRUE(o.any());
  const auto rc = o.recorder_config();
  EXPECT_TRUE(rc.trace);
  EXPECT_TRUE(rc.trace_coherence);
  EXPECT_FALSE(rc.epochs);
  EXPECT_FALSE(rc.heatmaps);
  EXPECT_EQ(rc.epoch_cycles, 123u);
  harness::ObsOptions e;
  e.epochs_csv_path = "e.csv";
  EXPECT_TRUE(e.recorder_config().epochs);
  harness::ObsOptions h;
  h.heatmaps_json_path = "h.json";
  EXPECT_TRUE(h.recorder_config().heatmaps);
}

TEST(ObsHarness, DeterminismThroughRunner) {
  ::setenv("TDN_NO_CACHE", "1", 1);
  TmpDir tmp;
  harness::RunConfig plain;
  plain.workload = "md5";
  plain.policy = system::PolicyKind::TdNuca;
  plain.params.scale = 0.1;
  harness::RunConfig obs = plain;
  obs.obs.trace_path = tmp.path("trace.json");
  obs.obs.epochs_csv_path = tmp.path("epochs.csv");

  const auto a = harness::run_experiment(plain, /*use_cache=*/false);
  const auto b = harness::run_experiment(obs, /*use_cache=*/true);
  ::unsetenv("TDN_NO_CACHE");
  EXPECT_EQ(a.metrics, b.metrics);
}
