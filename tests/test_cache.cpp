// Unit tests: pseudo-LRU tree, set-associative array, MSHR file.
#include <gtest/gtest.h>

#include <set>

#include "cache/cache_array.hpp"
#include "cache/mshr.hpp"
#include "cache/replacement.hpp"

using namespace tdn;
using namespace tdn::cache;

TEST(PseudoLru, VictimIsNeverMostRecentlyUsed) {
  for (unsigned ways : {2u, 4u, 8u, 16u}) {
    PseudoLruTree t(ways);
    for (unsigned w = 0; w < ways; ++w) {
      t.touch(w);
      EXPECT_NE(t.victim(), w) << "ways=" << ways << " touched=" << w;
    }
  }
}

TEST(PseudoLru, RoundRobinTouchCyclesVictims) {
  PseudoLruTree t(4);
  // Touch every way repeatedly; victims must vary (no way starves).
  std::set<unsigned> victims;
  for (int round = 0; round < 8; ++round) {
    const unsigned v = t.victim();
    victims.insert(v);
    t.touch(v);
  }
  EXPECT_EQ(victims.size(), 4u);
}

TEST(PseudoLru, RejectsNonPow2) {
  EXPECT_THROW(PseudoLruTree(6), RequireError);
}

TEST(PseudoLru, VictimInStaysInsideTheWayWindow) {
  for (unsigned ways : {4u, 8u, 16u}) {
    PseudoLruTree t(ways);
    // Whole-set window degenerates to the plain victim.
    EXPECT_EQ(t.victim_in(0, ways), t.victim());
    for (int round = 0; round < 32; ++round) {
      for (unsigned first = 0; first < ways; first += 2) {
        const unsigned v = t.victim_in(first, 2);
        EXPECT_GE(v, first) << "ways=" << ways;
        EXPECT_LT(v, first + 2) << "ways=" << ways;
      }
      t.touch(static_cast<unsigned>(round) % ways);
    }
  }
}

TEST(PseudoLru, VictimInNeverPicksTheMostRecentInWindow) {
  PseudoLruTree t(8);
  // Inside a half-set window, the just-touched way is not the next victim
  // (window wider than one way, so the tree has a real choice).
  for (unsigned w = 4; w < 8; ++w) {
    t.touch(w);
    EXPECT_NE(t.victim_in(4, 4), w) << "touched=" << w;
  }
}

namespace {
struct Meta {
  int tag = 0;
  bool dirty = false;
};
using Array = CacheArray<Meta>;
}  // namespace

TEST(CacheArray, GeometryValidation) {
  CacheGeometry bad;
  bad.size_bytes = 1000;  // not divisible
  EXPECT_THROW(Array{bad}, RequireError);
}

TEST(CacheArray, FindAllocateInvalidate) {
  Array arr({4 * kKiB, 4, 64});
  EXPECT_EQ(arr.find(0x1000), nullptr);
  std::optional<Array::Eviction> ev;
  auto& ln = arr.allocate(0x1000, ev);
  EXPECT_FALSE(ev.has_value());
  ln.meta.tag = 42;
  ASSERT_NE(arr.find(0x1000), nullptr);
  EXPECT_EQ(arr.find(0x1000)->meta.tag, 42);
  EXPECT_EQ(arr.occupied_lines(), 1u);
  auto m = arr.invalidate(0x1000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->tag, 42);
  EXPECT_EQ(arr.find(0x1000), nullptr);
  EXPECT_EQ(arr.occupied_lines(), 0u);
}

TEST(CacheArray, EvictionOnConflict) {
  Array arr({4 * kKiB, 4, 64});  // 16 sets
  // 5 lines in the same set (stride = sets * line = 1024).
  std::optional<Array::Eviction> ev;
  for (int i = 0; i < 4; ++i) {
    arr.allocate(0x100000 + i * 1024, ev);
    EXPECT_FALSE(ev.has_value());
  }
  arr.allocate(0x100000 + 4 * 1024, ev);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->addr, 0x100000u);  // LRU victim = first inserted
}

TEST(CacheArray, TouchProtectsFromEviction) {
  Array arr({4 * kKiB, 4, 64});
  std::optional<Array::Eviction> ev;
  for (int i = 0; i < 4; ++i) arr.allocate(0x100000 + i * 1024, ev);
  arr.touch(0x100000);  // refresh the oldest
  arr.allocate(0x100000 + 4 * 1024, ev);
  ASSERT_TRUE(ev.has_value());
  EXPECT_NE(ev->addr, 0x100000u);
}

TEST(CacheArray, AvoidPredicateSkipsBusyVictim) {
  Array arr({4 * kKiB, 4, 64});
  std::optional<Array::Eviction> ev;
  for (int i = 0; i < 4; ++i) arr.allocate(0x100000 + i * 1024, ev);
  const Addr protected_line = 0x100000;
  arr.allocate(0x100000 + 4 * 1024, ev,
               [&](Addr a) { return a == protected_line; });
  ASSERT_TRUE(ev.has_value());
  EXPECT_NE(ev->addr, protected_line);
}

TEST(CacheArray, FullyPinnedWindowForcesUnsafeEviction) {
  // Pathological case: every way in the allocation window is protected by
  // the avoid predicate. allocate() cannot stall (the caller owns timing),
  // so it must pick a victim anyway — but that protocol hazard is counted
  // in forced_unsafe_evictions() and trips TDN_ASSERT in debug builds.
  auto pinned_alloc = [] {
    Array arr({4 * kKiB, 4, 64});
    std::optional<Array::Eviction> ev;
    for (int i = 0; i < 4; ++i) arr.allocate(0x100000 + i * 1024, ev);
    arr.allocate(0x100000 + 4 * 1024, ev, [](Addr) { return true; });
    return std::make_pair(ev, arr.forced_unsafe_evictions());
  };
#if !defined(NDEBUG) || defined(TDN_CHECKED)
  EXPECT_DEATH(pinned_alloc(), "pinned");
#else
  const auto [ev, forced] = pinned_alloc();
  ASSERT_TRUE(ev.has_value());  // a pinned line was displaced, not dropped
  EXPECT_EQ(forced, 1u);
#endif
}

TEST(CacheArray, SafeFallbackDoesNotCountAsForced) {
  Array arr({4 * kKiB, 4, 64});
  std::optional<Array::Eviction> ev;
  for (int i = 0; i < 4; ++i) arr.allocate(0x100000 + i * 1024, ev);
  // Pin everything except one way: the fallback finds the safe way and the
  // forced counter stays at zero.
  const Addr safe = 0x100000 + 2 * 1024;
  arr.allocate(0x100000 + 4 * 1024, ev, [&](Addr a) { return a != safe; });
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->addr, safe);
  EXPECT_EQ(arr.forced_unsafe_evictions(), 0u);
}

TEST(CacheArray, SetIndexShiftSpreadsBankInterleavedLines) {
  // With 16-way interleaving across banks, a bank sees lines whose low 4
  // line-address bits are constant. Without the shift those lines collide
  // in 1/16th of the sets.
  CacheGeometry geo{16 * kKiB, 4, 64};
  geo.set_index_shift = 4;
  Array arr(geo);
  std::set<unsigned> sets;
  for (Addr line = 0; line < 64 * 16 * 64; line += 16 * 64)
    sets.insert(arr.set_of(line));
  EXPECT_EQ(sets.size(), arr.capacity_lines() / 4);  // all 64 sets used
}

TEST(CacheArray, ForEachInRangeAlignmentRule) {
  Array arr({4 * kKiB, 4, 64});
  std::optional<Array::Eviction> ev;
  arr.allocate(0x1000, ev);
  arr.allocate(0x1040, ev);
  // Range covering the first line entirely but only half the second:
  // the partially covered line must not be visited (paper Sec. III-D).
  std::vector<Addr> visited;
  arr.for_each_in_range({0x1000, 0x1060}, [&](Addr a, Meta&) {
    visited.push_back(a);
    return false;
  });
  EXPECT_EQ(visited, (std::vector<Addr>{0x1000}));
}

TEST(CacheArray, ForEachInRangeInvalidates) {
  Array arr({4 * kKiB, 4, 64});
  std::optional<Array::Eviction> ev;
  for (Addr a = 0x2000; a < 0x2200; a += 64) arr.allocate(a, ev);
  const auto n =
      arr.for_each_in_range({0x2000, 0x2200}, [](Addr, Meta&) { return true; });
  EXPECT_EQ(n, 8u);
  EXPECT_EQ(arr.occupied_lines(), 0u);
}

TEST(Mshr, MergeAndComplete) {
  MshrFile mshr(4);
  int fills = 0;
  EXPECT_EQ(mshr.register_miss(0x40, [&] { ++fills; }),
            MshrFile::Outcome::NewEntry);
  EXPECT_EQ(mshr.register_miss(0x40, [&] { ++fills; }),
            MshrFile::Outcome::Merged);
  EXPECT_TRUE(mshr.in_flight(0x40));
  EXPECT_EQ(mshr.merges(), 1u);
  auto cbs = mshr.complete(0x40);
  EXPECT_EQ(cbs.size(), 2u);
  for (auto& cb : cbs) cb();
  EXPECT_EQ(fills, 2);
  EXPECT_FALSE(mshr.in_flight(0x40));
}

TEST(Mshr, CapacityLimit) {
  MshrFile mshr(2);
  EXPECT_EQ(mshr.register_miss(0x00, [] {}), MshrFile::Outcome::NewEntry);
  EXPECT_EQ(mshr.register_miss(0x40, [] {}), MshrFile::Outcome::NewEntry);
  EXPECT_EQ(mshr.register_miss(0x80, [] {}), MshrFile::Outcome::Full);
  // Merges still allowed when full.
  EXPECT_EQ(mshr.register_miss(0x00, [] {}), MshrFile::Outcome::Merged);
  EXPECT_EQ(mshr.structural_stalls(), 1u);
}

TEST(Mshr, FullLeavesCallbackIntact) {
  // Contract regression (mshr.hpp): Outcome::Full must not consume the
  // rvalue callback — the caller keeps ownership and retries later. A
  // moved-from std::function here would silently drop the fill and strand
  // the access forever.
  MshrFile mshr(1);
  EXPECT_EQ(mshr.register_miss(0x00, [] {}), MshrFile::Outcome::NewEntry);
  int calls = 0;
  std::function<void()> cb = [&] { ++calls; };
  EXPECT_EQ(mshr.register_miss(0x40, std::move(cb)), MshrFile::Outcome::Full);
  ASSERT_TRUE(static_cast<bool>(cb));  // still owned by the caller
  // Retry after the in-flight miss completes: the same callback registers
  // and fires normally.
  for (auto& fill : mshr.complete(0x00)) fill();
  EXPECT_EQ(mshr.register_miss(0x40, std::move(cb)),
            MshrFile::Outcome::NewEntry);
  for (auto& fill : mshr.complete(0x40)) fill();
  EXPECT_EQ(calls, 1);
}

TEST(Mshr, CompleteUnknownThrows) {
  MshrFile mshr(2);
  EXPECT_THROW(mshr.complete(0x123), RequireError);
}
