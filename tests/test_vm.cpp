// Unit tests for the tdn::vm subsystem: buddy allocator (contiguity,
// puncturing, serialization), multi-size page table (THP policies, huge
// fallbacks, range collapse), two-level TLB, page walker + paging-structure
// caches, the Mmu facade's legacy parity, and the end-to-end huge-page
// registration collapse.
#include <gtest/gtest.h>

#include "coherence/coherent_system.hpp"
#include "harness/runner.hpp"
#include "mem/page_table.hpp"
#include "mem/tlb.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/snuca.hpp"
#include "sim/event_queue.hpp"
#include "vm/buddy_allocator.hpp"
#include "vm/mmu.hpp"
#include "vm/page_walker.hpp"
#include "vm/tlb_hierarchy.hpp"

using namespace tdn;
using namespace tdn::vm;

namespace {

VmConfig vm_on(ThpPolicy thp = ThpPolicy::Always, double frag = 0.0) {
  VmConfig cfg;
  cfg.enabled = true;
  cfg.thp = thp;
  cfg.fragmentation = frag;
  return cfg;
}

/// Minimal 2x2 coherent hierarchy for walker/Mmu tests.
struct CacheRig {
  sim::EventQueue eq;
  noc::Mesh mesh{2, 2};
  noc::Network net{mesh, eq, {}};
  mem::MemControllers mcs{1, {0}, {}};
  nuca::SNucaPolicy policy{4};
  coherence::CoherentSystem sys{eq, net, mesh, mcs, policy, {}, 4};
};

}  // namespace

// --- buddy allocator -------------------------------------------------------

TEST(VmBuddy, LowestBaseFirstSplitting) {
  BuddyAllocator b(0.0, 1);
  EXPECT_EQ(b.try_allocate(0), 0u);
  EXPECT_EQ(b.try_allocate(0), 1u);
  // The first 2M block is broken by the two frames above; the next full run
  // starts at frame 512.
  EXPECT_EQ(b.try_allocate(9), 512u);
  EXPECT_EQ(b.frames_allocated(), 2u + 512u);
  EXPECT_EQ(b.superblocks(), 1u);
}

TEST(VmBuddy, DeterministicForSameSeed) {
  BuddyAllocator a(0.3, 42), b(0.3, 42);
  for (unsigned i = 0; i < 64; ++i) {
    const unsigned order = (i % 3 == 0) ? 9 : 0;
    EXPECT_EQ(a.try_allocate(order), b.try_allocate(order));
  }
  EXPECT_EQ(a.punctured_frames(), b.punctured_frames());
}

TEST(VmBuddy, FullPunctureDefeatsHugeAllocations) {
  BuddyAllocator b(1.0, 7);
  EXPECT_FALSE(b.try_allocate(9, 1).has_value());
  EXPECT_GT(b.punctured_frames(), 0u);
  // 4K allocations still succeed: punctured blocks lose one frame, not all.
  EXPECT_TRUE(b.try_allocate(0).has_value());
}

TEST(VmBuddy, SerializeRoundTripContinuesIdentically) {
  BuddyAllocator a(0.4, 99), twin(0.4, 99);
  for (unsigned i = 0; i < 16; ++i) {
    a.try_allocate(i % 2 == 0 ? 0 : 9);
    twin.try_allocate(i % 2 == 0 ? 0 : 9);
  }
  BuddyAllocator restored(0.4, 99);
  restored.restore(a.serialize());
  EXPECT_EQ(restored.frames_allocated(), twin.frames_allocated());
  EXPECT_EQ(restored.punctured_frames(), twin.punctured_frames());
  for (unsigned i = 0; i < 32; ++i) {
    const unsigned order = (i % 5 == 0) ? 9 : 0;
    EXPECT_EQ(restored.try_allocate(order), twin.try_allocate(order)) << i;
  }
}

// --- page table ------------------------------------------------------------

TEST(VmPageTable, AlwaysPolicyMapsHugePages) {
  mem::PageTable pt({}, vm_on(ThpPolicy::Always));
  const auto m = pt.touch_page(0x40000000);
  EXPECT_EQ(m.span, kPage2M);
  EXPECT_EQ(m.va_base, 0x40000000u);
  // Every address inside the huge page resolves inside one contiguous frame
  // run, with one mapping.
  const Addr base = pt.translate(0x40000000);
  EXPECT_EQ(pt.translate(0x40000000 + kPage2M - 64), base + kPage2M - 64);
  EXPECT_EQ(pt.mapped_pages(), 1u);
  EXPECT_EQ(pt.pages_of(kPage2M), 1u);
  EXPECT_EQ(pt.pages_of(kPage4K), 0u);
}

TEST(VmPageTable, NeverPolicyMaps4K) {
  mem::PageTable pt({}, vm_on(ThpPolicy::Never));
  EXPECT_EQ(pt.touch_page(0x40000000).span, kPage4K);
  EXPECT_EQ(pt.page_span(0x40000000), kPage4K);
}

TEST(VmPageTable, MadviseGatesHugePages) {
  mem::PageTable pt({}, vm_on(ThpPolicy::Madvise));
  // No advice: base pages.
  EXPECT_EQ(pt.touch_page(0x40000000).span, kPage4K);
  // Advised region covering a full aligned 2M span: huge page.
  pt.advise_huge({0x40200000, 0x40200000 + kPage2M});
  EXPECT_EQ(pt.touch_page(0x40200000 + 0x1234).span, kPage2M);
  // Advice that covers only part of the aligned span stays 4K.
  pt.advise_huge({0x40600000, 0x40600000 + kPage4K});
  EXPECT_EQ(pt.touch_page(0x40600000).span, kPage4K);
}

TEST(VmPageTable, PuncturedPoolFallsBackTo4K) {
  mem::PageTable pt({}, vm_on(ThpPolicy::Always, /*frag=*/1.0));
  EXPECT_EQ(pt.touch_page(0x40000000).span, kPage4K);
  EXPECT_GE(pt.huge_fallbacks(), 1u);
  EXPECT_GT(pt.punctured_frames(), 0u);
}

TEST(VmPageTable, ConflictingBasePagesBlockHugePromotion) {
  mem::PageTable pt({}, vm_on(ThpPolicy::Madvise));
  // A base page materializes inside the 2M span before the advice arrives.
  EXPECT_EQ(pt.touch_page(0x40000000 + 5 * kPage4K).span, kPage4K);
  pt.advise_huge({0x40000000, 0x40000000 + kPage2M});
  // The huge candidate would overlap the existing 4K mapping: fall back.
  EXPECT_EQ(pt.touch_page(0x40000000).span, kPage4K);
  EXPECT_GE(pt.huge_fallbacks(), 1u);
}

TEST(VmPageTable, TranslateRangeCollapsesHugePages) {
  mem::PageTable pt({}, vm_on(ThpPolicy::Always));
  const AddrRange vr{0x40000000, 0x40000000 + 2 * kPage2M};
  const auto tr = pt.translate_range(vr);
  // Two huge pages from an unpunctured buddy pool are physically adjacent:
  // one collapsed piece, two iterations (vs 1024 at 4K grain).
  EXPECT_EQ(tr.pages_walked, 2u);
  ASSERT_EQ(tr.physical_pieces.size(), 1u);
  EXPECT_EQ(tr.physical_pieces[0].size(), vr.size());
}

TEST(VmPageTable, CkptRoundTripContinuesIdentically) {
  mem::PageTable a({}, vm_on()), twin({}, vm_on());
  for (Addr va = 0x40000000; va < 0x40000000 + 8 * kPage2M; va += kPage2M) {
    a.touch_page(va);
    twin.touch_page(va);
  }
  mem::PageTable restored({}, vm_on());
  restored.set_alloc_state(a.alloc_state());
  a.ckpt_drop_mappings();
  twin.ckpt_drop_mappings();
  for (Addr va = 0x80000000; va < 0x80000000 + 4 * kPage2M; va += kPage4K)
    EXPECT_EQ(restored.translate(va), twin.translate(va));
}

// --- two-level TLB ---------------------------------------------------------

TEST(VmTlbHierarchy, HitLatenciesPerLevel) {
  VmConfig cfg = vm_on();
  cfg.l1_4k_entries = 2;
  TlbHierarchy t(cfg);
  EXPECT_FALSE(t.lookup(0x1000).hit);
  t.fill(0x1000, kPage4K);
  const auto l1 = t.lookup(0x1800);
  EXPECT_TRUE(l1.hit);
  EXPECT_EQ(l1.latency, cfg.l1_latency);
  // Evict 0x1000 from the 2-entry L1; it stays in the unified L2.
  t.fill(0x2000, kPage4K);
  t.fill(0x3000, kPage4K);
  const auto l2 = t.lookup(0x1000);
  EXPECT_TRUE(l2.hit);
  EXPECT_EQ(l2.latency, cfg.l1_latency + cfg.l2_latency);
  EXPECT_EQ(t.l2_hits(), 1u);
  // The L2 hit refilled the 4K L1 array.
  EXPECT_EQ(t.lookup(0x1000).latency, cfg.l1_latency);
}

TEST(VmTlbHierarchy, MixedSpanLookup) {
  TlbHierarchy t(vm_on());
  t.fill(0x40000000, kPage2M);
  EXPECT_TRUE(t.lookup(0x40000000 + kPage2M - 64).hit);
  EXPECT_FALSE(t.lookup(0x40000000 + kPage2M).hit);
  EXPECT_EQ(t.hits(), 1u);
  EXPECT_EQ(t.misses(), 1u);
}

TEST(VmTlbHierarchy, ShootdownDropsEveryLevel) {
  TlbHierarchy t(vm_on());
  t.fill(0x5000, kPage4K);
  t.invalidate_page(0x5800);
  EXPECT_EQ(t.shootdowns(), 1u);
  EXPECT_FALSE(t.lookup(0x5000).hit);
  t.invalidate_page(0x5000);  // absent: not counted
  EXPECT_EQ(t.shootdowns(), 1u);
}

// --- page walker -----------------------------------------------------------

TEST(VmWalker, PscShortensWarmWalks) {
  CacheRig rig;
  VmConfig cfg = vm_on();
  PageWalker w(0, rig.eq, &rig.sys, cfg);
  // Cold 4K walk: all four radix levels load.
  const Cycle cold = w.charge_walk(0x40000000, kPage4K);
  EXPECT_EQ(cold, cfg.psc_latency + 4 * cfg.walk_charge_per_level);
  EXPECT_EQ(w.walk_loads(), 4u);
  // Adjacent page: the PDE is cached, one load.
  const Cycle warm = w.charge_walk(0x40001000, kPage4K);
  EXPECT_EQ(warm, cfg.psc_latency + 1 * cfg.walk_charge_per_level);
  EXPECT_EQ(w.psc_hits(), 1u);
  rig.eq.run();  // drain the fire-and-forget PTE loads
  EXPECT_GT(rig.sys.stats().l1_misses.value(), 0u);
}

TEST(VmWalker, HugePagesNeedFewerLevels) {
  CacheRig rig;
  VmConfig cfg = vm_on();
  PageWalker w(0, rig.eq, &rig.sys, cfg);
  w.charge_walk(0x40000000, kPage2M);
  EXPECT_EQ(w.walk_loads(), 3u);  // leaf is the PDE: levels 4,3,2
  rig.eq.run();
}

TEST(VmWalker, DemandWalkTravelsTheHierarchy) {
  CacheRig rig;
  PageWalker w(0, rig.eq, &rig.sys, vm_on());
  Cycle walk_lat = 0;
  w.walk(0x40000000, kPage4K, [&](Cycle c) { walk_lat = c; });
  rig.eq.run();
  EXPECT_GT(walk_lat, 0u);
  EXPECT_EQ(w.walks(), 1u);
  EXPECT_EQ(w.walk_cycles(), walk_lat);
  // Four dependent PTE loads went through the caches to memory.
  EXPECT_EQ(rig.sys.stats().l1_misses.value(), 4u);
}

// --- Mmu facade ------------------------------------------------------------

TEST(VmMmu, LegacyModeMatchesFlatTlb) {
  sim::EventQueue eq;
  mem::PageTable pt_mmu, pt_ref;
  mem::TlbConfig tcfg;
  Mmu mmu(0, eq, nullptr, pt_mmu, tcfg, {});
  mem::Tlb ref(tcfg, pt_ref.page_size());
  const Addr vas[] = {0x1000, 0x2000, 0x1008, 0x90000, 0x1010};
  for (const Addr va : vas) {
    Cycle got = kNeverCycle;
    Addr pa = 0;
    mmu.translate(va, [&](Cycle c, Addr p) {
      got = c;
      pa = p;
    });
    EXPECT_EQ(got, ref.access(va)) << std::hex << va;  // synchronous
    EXPECT_EQ(pa, pt_ref.translate(va));
    EXPECT_EQ(mmu.charge_translation(va), ref.access(va));
  }
  EXPECT_EQ(mmu.tlb_hits(), ref.hits());
  EXPECT_EQ(mmu.tlb_misses(), ref.misses());
}

TEST(VmMmu, VmModeMissWalksThenHits) {
  CacheRig rig;
  mem::PageTable pt({}, vm_on());
  Mmu mmu(0, rig.eq, &rig.sys, pt, {}, vm_on());
  Cycle miss_lat = kNeverCycle;
  mmu.translate(0x40000000, [&](Cycle c, Addr) { miss_lat = c; });
  rig.eq.run();
  ASSERT_NE(miss_lat, kNeverCycle);
  EXPECT_GT(miss_lat, vm_on().l1_latency + vm_on().l2_latency);
  EXPECT_EQ(mmu.tlb_misses(), 1u);
  EXPECT_EQ(mmu.walks(), 1u);
  // Same huge page, different offset: synchronous L1 hit now.
  Cycle hit_lat = kNeverCycle;
  mmu.translate(0x40000000 + 0x5000, [&](Cycle c, Addr) { hit_lat = c; });
  EXPECT_EQ(hit_lat, vm_on().l1_latency);
  EXPECT_EQ(mmu.tlb_hits(), 1u);
}

// --- end to end ------------------------------------------------------------

TEST(VmEndToEnd, HugePagesCollapseRegistration) {
  harness::RunConfig never;
  never.workload = "randtouch";
  never.policy = system::PolicyKind::TdNuca;
  never.params.scale = 0.125;
  never.sys.vm = vm_on(ThpPolicy::Never);
  harness::RunConfig always = never;
  always.sys.vm.thp = ThpPolicy::Always;

  const auto rn = harness::run_experiment(never, /*use_cache=*/false);
  const auto ra = harness::run_experiment(always, /*use_cache=*/false);
  EXPECT_GT(ra.get("vm.pages_2m"), 0.0);
  EXPECT_EQ(ra.get("vm.pages_4k"), 0.0);
  // The ISSUE headline: 2M pages collapse the iterative RRT registration
  // and the TLB+walk overhead.
  EXPECT_LT(ra.get("tdnuca.translate_pages") * 50,
            rn.get("tdnuca.translate_pages"));
  EXPECT_LT(ra.get("tdnuca.translate_cycles"),
            rn.get("tdnuca.translate_cycles"));
  EXPECT_LT(ra.get("tlb.misses"), rn.get("tlb.misses"));
  EXPECT_LT(ra.get("vm.walk_loads"), rn.get("vm.walk_loads"));
  EXPECT_LT(ra.get("sim.cycles"), rn.get("sim.cycles"));
}
