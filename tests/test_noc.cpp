// Unit tests: mesh geometry, XY routing, cluster partitioning, network
// timing and traffic accounting.
#include <gtest/gtest.h>

#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "sim/event_queue.hpp"

using namespace tdn;
using namespace tdn::noc;

TEST(Mesh, CoordsRoundTrip) {
  Mesh m(4, 4);
  for (CoreId t = 0; t < 16; ++t) EXPECT_EQ(m.tile(m.coord(t)), t);
  EXPECT_EQ(m.coord(5).x, 1u);
  EXPECT_EQ(m.coord(5).y, 1u);
}

TEST(Mesh, ManhattanHops) {
  Mesh m(4, 4);
  EXPECT_EQ(m.hops(0, 0), 0u);
  EXPECT_EQ(m.hops(0, 3), 3u);
  EXPECT_EQ(m.hops(0, 15), 6u);
  EXPECT_EQ(m.hops(5, 10), 2u);
}

TEST(Mesh, XyRouteProperties) {
  Mesh m(4, 4);
  for (CoreId a = 0; a < 16; ++a) {
    for (CoreId b = 0; b < 16; ++b) {
      const auto path = m.xy_route(a, b);
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      EXPECT_EQ(path.size(), m.hops(a, b) + 1);
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        EXPECT_EQ(m.hops(path[i], path[i + 1]), 1u);
    }
  }
}

TEST(Mesh, TheoreticalMeanDistanceIs2Point5On4x4) {
  Mesh m(4, 4);
  EXPECT_NEAR(m.theoretical_mean_distance(), 2.5, 1e-9);
}

TEST(Mesh, QuadrantClusters) {
  Mesh m(4, 4);
  // Quadrants: {0,1,4,5}, {2,3,6,7}, {8,9,12,13}, {10,11,14,15}
  EXPECT_EQ(m.cluster_of(0), m.cluster_of(5));
  EXPECT_NE(m.cluster_of(0), m.cluster_of(2));
  const auto c0 = m.cluster_tiles(0);
  EXPECT_EQ(c0, (std::vector<CoreId>{0, 1, 4, 5}));
  const auto c3 = m.cluster_tiles(3);
  EXPECT_EQ(c3, (std::vector<CoreId>{10, 11, 14, 15}));
}

TEST(Network, LatencyMatchesHops) {
  sim::EventQueue eq;
  Mesh m(4, 4);
  Network net(m, eq, {.link_latency = 1, .router_latency = 1});
  Cycle arrival = 0;
  net.send(0, 3, MsgClass::Control, [&] { arrival = eq.now(); });
  eq.run();
  EXPECT_EQ(arrival, 3u * 2u);  // 3 hops x (router + link)
}

TEST(Network, LocalDeliveryIsImmediateButOrdered) {
  sim::EventQueue eq;
  Mesh m(2, 2);
  Network net(m, eq, {});
  bool delivered = false;
  net.send(1, 1, MsgClass::Data, [&] { delivered = true; });
  EXPECT_FALSE(delivered);  // deferred through the queue
  eq.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(eq.now(), 0u);
}

TEST(Network, RouterByteAccounting) {
  sim::EventQueue eq;
  Mesh m(4, 4);
  NetworkConfig cfg;
  Network net(m, eq, cfg);
  net.send(0, 1, MsgClass::Data, [] {});
  eq.run();
  // Data message traverses 2 routers (src + dst).
  EXPECT_EQ(net.total_router_bytes(), 2u * cfg.data_bytes);
  EXPECT_EQ(net.router_bytes_at(0), cfg.data_bytes);
  EXPECT_EQ(net.router_bytes_at(1), cfg.data_bytes);
  EXPECT_EQ(net.router_bytes_at(2), 0u);
  EXPECT_EQ(net.messages(), 1u);
  EXPECT_EQ(net.data_messages(), 1u);
  EXPECT_EQ(net.total_hops(), 1u);
}

TEST(Network, LinkSerializationQueues) {
  sim::EventQueue eq;
  Mesh m(4, 1);
  NetworkConfig cfg;
  cfg.link_bytes_per_cycle = 8;  // 72B data = 9 cycles serialization
  Network net(m, eq, cfg);
  Cycle first = 0, second = 0;
  net.send(0, 1, MsgClass::Data, [&] { first = eq.now(); });
  net.send(0, 1, MsgClass::Data, [&] { second = eq.now(); });
  eq.run();
  EXPECT_EQ(first, 2u);
  // Second message waits for the link: departs at 9, arrives 9+2.
  EXPECT_EQ(second, 11u);
}

TEST(Network, ControlSmallerThanData) {
  sim::EventQueue eq;
  Mesh m(2, 2);
  Network net(m, eq, {});
  EXPECT_LT(net.bytes_of(MsgClass::Control), net.bytes_of(MsgClass::Data));
}
