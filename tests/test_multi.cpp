// Tests of tdn::multi — mix parsing, per-app address-space disjointness,
// per-app stats namespacing, colocation fingerprinting, serial/parallel
// sweep bit-identity for mixes, and fault isolation between partitions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/require.hpp"
#include "harness/runner.hpp"
#include "harness/sweep_runner.hpp"
#include "multi/mix.hpp"
#include "multi/multi_system.hpp"

using namespace tdn;
using namespace tdn::multi;

namespace {

workloads::WorkloadParams small_params() {
  workloads::WorkloadParams p;
  p.scale = 0.1;
  return p;
}

}  // namespace

TEST(MixSpec, ParsesMixesAndSingles) {
  const MixSpec two = MixSpec::parse("gauss+histo");
  ASSERT_EQ(two.apps.size(), 2u);
  EXPECT_EQ(two.apps[0], "gauss");
  EXPECT_EQ(two.apps[1], "histo");
  EXPECT_TRUE(two.is_multi());
  EXPECT_EQ(two.joined(), "gauss+histo");

  const MixSpec one = MixSpec::parse("jacobi");
  EXPECT_FALSE(one.is_multi());
  ASSERT_EQ(one.apps.size(), 1u);
}

TEST(MixSpec, RejectsUnknownNamesListingValidOnes) {
  try {
    MixSpec::parse("gauss+nosuchworkload");
    FAIL() << "expected RequireError";
  } catch (const RequireError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nosuchworkload"), std::string::npos) << msg;
    // The menu of valid names must be in the message.
    EXPECT_NE(msg.find("gauss"), std::string::npos) << msg;
  }
  EXPECT_THROW(MixSpec::parse(""), RequireError);
  EXPECT_THROW(MixSpec::parse("gauss++histo"), RequireError);
}

TEST(MixSpec, AppOfVaddrInvertsTheStride) {
  EXPECT_EQ(app_of_vaddr(mem::kHeapBase), 0u);
  EXPECT_EQ(app_of_vaddr(kAppStride + mem::kHeapBase), 1u);
  EXPECT_EQ(app_of_vaddr(3 * kAppStride + 12345), 3u);
}

TEST(MultiProgram, AddressSpacesAreDisjoint) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  MultiProgramSystem sys(cfg, MixSpec::parse("gauss+histo+jacobi+kmeans"));
  sys.build(small_params());
  ASSERT_EQ(sys.num_apps(), 4u);
  for (unsigned a = 0; a < 4; ++a) {
    const Addr base = a * kAppStride + mem::kHeapBase;
    const Addr footprint = sys.app_vspace(a).footprint();
    EXPECT_GT(footprint, 0u) << "app " << a;
    EXPECT_LT(footprint, kAppStride) << "app " << a;
    // Every allocated region lies inside the app's 1 TiB slot, so regions
    // of different apps can never alias.
    for (const auto& r : sys.app_vspace(a).regions()) {
      EXPECT_GE(r.range.begin, base) << "app " << a << " " << r.name;
      EXPECT_LT(r.range.end, base + kAppStride) << "app " << a << " " << r.name;
      EXPECT_EQ(app_of_vaddr(r.range.begin), a) << r.name;
    }
  }
}

TEST(MultiProgram, PartitionsAreDisjointAndCoverDistinctRows) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::SNuca;
  MultiProgramSystem sys(cfg, MixSpec::parse("lu+md5"));
  const CoreMask c0 = sys.app_cores(0);
  const CoreMask c1 = sys.app_cores(1);
  EXPECT_EQ(c0.count(), 8);
  EXPECT_EQ(c1.count(), 8);
  EXPECT_TRUE((c0 & c1).empty());
  EXPECT_TRUE((sys.app_banks(0) & sys.app_banks(1)).empty());
  EXPECT_EQ(sys.app_banks(0).count() + sys.app_banks(1).count(), 16);
}

TEST(MultiProgram, PerAppCountersSumToMachineTotals) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  MultiProgramSystem sys(cfg, MixSpec::parse("gauss+histo"));
  sys.build(small_params());
  sys.run();
  ASSERT_TRUE(sys.completed());

  const auto reg = sys.collect_stats();
  EXPECT_EQ(reg.get("multi.num_apps"), 2.0);
  for (const char* key : {"llc.requests", "llc.hits", "llc.misses",
                          "llc.writebacks", "tasks.completed"}) {
    const std::string k = key;
    EXPECT_EQ(reg.get("app0." + k) + reg.get("app1." + k), reg.get(k)) << k;
  }
  EXPECT_EQ(reg.get("sim.cycles"),
            std::max(reg.get("app0.sim.cycles"), reg.get("app1.sim.cycles")));
  EXPECT_GT(reg.get("app0.sim.cycles"), 0.0);
  EXPECT_GT(reg.get("app1.sim.cycles"), 0.0);

  // Partitioned mode: every app's resident lines stay inside its own banks.
  for (unsigned a = 0; a < 2; ++a) {
    const BankMask own = sys.app_banks(a);
    std::uint64_t outside = 0;
    for (BankId b = 0; b < 16; ++b)
      if (!own.test(b)) outside += sys.caches().app_resident_lines(a, b);
    EXPECT_EQ(outside, 0u) << "app " << a << " leaked lines outside partition";
  }
}

TEST(MultiProgram, SharedModeSpansTheWholeLlc) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::SNuca;
  MultiOptions opts;
  opts.mode = PartitionMode::Shared;
  MultiProgramSystem sys(cfg, MixSpec::parse("gauss+histo"), opts);
  sys.build(small_params());
  sys.run();
  ASSERT_TRUE(sys.completed());
  // In Shared mode the bank masks are empty (= whole LLC) and the stats
  // report all 16 banks per app.
  EXPECT_TRUE(sys.app_banks(0).empty());
  const auto reg = sys.collect_stats();
  EXPECT_EQ(reg.get("app0.banks"), 16.0);
  EXPECT_EQ(reg.get("multi.partitioned"), 0.0);
}

TEST(MultiProgram, FingerprintSeparatesColocationOptions) {
  harness::RunConfig base;
  base.workload = "gauss+histo";
  base.policy = system::PolicyKind::TdNuca;

  harness::RunConfig shared = base;
  shared.multi.mode = PartitionMode::Shared;
  harness::RunConfig ways = base;
  ways.multi.ways_per_app = 4;
  harness::RunConfig overlap = base;
  overlap.multi.overlap_cores = true;

  EXPECT_NE(base.fingerprint(), shared.fingerprint());
  EXPECT_NE(base.fingerprint(), ways.fingerprint());
  EXPECT_NE(base.fingerprint(), overlap.fingerprint());
  EXPECT_NE(shared.fingerprint(), ways.fingerprint());

  // Different mixes and the single-app spelling all hash apart.
  harness::RunConfig single = base;
  single.workload = "gauss";
  harness::RunConfig other = base;
  other.workload = "histo+gauss";
  EXPECT_NE(base.fingerprint(), single.fingerprint());
  EXPECT_NE(base.fingerprint(), other.fingerprint());
}

TEST(MultiProgram, FingerprintGoldenV8) {
  // Golden hash of the default 2-app config under schema v8 (v8 added the
  // tdn::vm options segment; a vm-disabled run hashes the "off" sentinel in
  // the vm position). A change here means cached results are (correctly)
  // invalidated — if that was not the intent, the fingerprint composition
  // regressed. Regenerate by printing cfg.fingerprint() for this config.
  harness::RunConfig cfg;
  cfg.workload = "gauss+histo";
  cfg.policy = system::PolicyKind::TdNuca;
  EXPECT_EQ(cfg.fingerprint(), 0x50fbf5288d275b07ull)
      << std::hex << cfg.fingerprint();
}

TEST(MultiProgram, SerialAndParallelMixSweepsBitIdentical) {
  std::vector<harness::RunConfig> cfgs;
  for (const auto mode : {PartitionMode::Partitioned, PartitionMode::Shared}) {
    for (const auto pol :
         {system::PolicyKind::SNuca, system::PolicyKind::TdNuca}) {
      harness::RunConfig cfg;
      cfg.workload = "gauss+histo";
      cfg.policy = pol;
      cfg.multi.mode = mode;
      cfg.params = small_params();
      cfgs.push_back(std::move(cfg));
    }
  }
  harness::SweepOptions serial_opts, par_opts;
  serial_opts.jobs = 1;
  serial_opts.use_cache = false;
  par_opts.jobs = 4;
  par_opts.use_cache = false;
  const auto serial = harness::SweepRunner(serial_opts).run(cfgs);
  const auto parallel = harness::SweepRunner(par_opts).run(cfgs);
  ASSERT_EQ(serial.size(), cfgs.size());
  ASSERT_EQ(parallel.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    // std::map equality compares every key and every double bit-exactly.
    EXPECT_EQ(serial[i].metrics, parallel[i].metrics) << "run " << i;
  }
}

TEST(MultiProgramFault, DeadBankInOnePartitionDegradesOnlyThatApp) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::TdNuca;
  // Bank 3 is in app0's row partition (rows 0-1 on the 4x4 mesh); it dies
  // early enough that both apps are still running.
  cfg.fault.plan = "bank_fail@3:cycle=5k";
  MultiProgramSystem sys(cfg, MixSpec::parse("gauss+histo"));
  sys.build(small_params());
  sys.run();
  ASSERT_TRUE(sys.completed());

  ASSERT_NE(sys.fault_injector(), nullptr);
  EXPECT_EQ(sys.fault_injector()->health().counters.banks_failed, 1u);
  EXPECT_FALSE(sys.fault_injector()->health().bank_ok(3));
  EXPECT_TRUE(sys.app_banks(0).test(3));

  // Isolation: even while app0 degrades around its dead bank, neither app's
  // lines ever land in the other's partition (NoC/DRAM sharing may still
  // perturb timing, but capacity stays partitioned).
  EXPECT_EQ(sys.caches().app_resident_lines(0, 3), 0u);  // dead bank drained
  for (unsigned a = 0; a < 2; ++a) {
    const BankMask own = sys.app_banks(a);
    for (BankId b = 0; b < 16; ++b)
      if (!own.test(b))
        EXPECT_EQ(sys.caches().app_resident_lines(a, b), 0u)
            << "app " << a << " bank " << b;
  }
  // Both apps finish all their tasks despite the failure.
  const auto reg = sys.collect_stats();
  EXPECT_EQ(reg.get("app0.tasks.completed"),
            reg.get("app0.workload.num_tasks"));
  EXPECT_EQ(reg.get("app1.tasks.completed"),
            reg.get("app1.workload.num_tasks"));
}

TEST(MultiProgram, WayQuotasRespectAssociativity) {
  system::SystemConfig cfg;
  cfg.policy = system::PolicyKind::SNuca;
  MultiOptions opts;
  opts.ways_per_app = 4;  // 2 apps x 4 ways fits the 16-way LLC
  MultiProgramSystem sys(cfg, MixSpec::parse("gauss+histo"), opts);
  sys.build(small_params());
  sys.run();
  ASSERT_TRUE(sys.completed());
  const auto reg = sys.collect_stats();
  EXPECT_EQ(reg.get("multi.ways_per_app"), 4.0);

  MultiOptions too_many;
  too_many.ways_per_app = 12;  // 2 x 12 > 16-way LLC: must fail loudly
  EXPECT_THROW(
      { MultiProgramSystem bad(cfg, MixSpec::parse("gauss+histo"), too_many); },
      RequireError);
}

TEST(MultiProgram, RejectsUnsupportedShapes) {
  system::SystemConfig cfg;
  // 3 apps cannot row-partition a 4-row mesh.
  EXPECT_THROW(
      { MultiProgramSystem bad(cfg, MixSpec::parse("gauss+histo+jacobi")); },
      RequireError);
  cfg.policy = system::PolicyKind::TdNucaDryRun;
  EXPECT_THROW(
      { MultiProgramSystem bad(cfg, MixSpec::parse("gauss+histo")); },
      RequireError);
}
