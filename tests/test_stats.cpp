// Unit tests: statistics primitives, registry, table formatting.
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "stats/counters.hpp"
#include "stats/registry.hpp"
#include "stats/table.hpp"

using namespace tdn::stats;

TEST(Counter, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(9);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Sampled, MeanMinMax) {
  Sampled s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_EQ(s.samples(), 2u);
}

TEST(Sampled, Weighted) {
  Sampled s;
  s.add(10.0, 3.0);
  s.add(0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
}

TEST(Sampled, EmptyIsZero) {
  Sampled s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(4);
  h.add(0);
  h.add(3);
  h.add(99);  // overflow bucket
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, Mean) {
  Histogram h(10);
  h.add(2, 2);
  h.add(4);
  EXPECT_DOUBLE_EQ(h.mean(), (2.0 * 2 + 4) / 3.0);
}

TEST(Registry, SetAddGet) {
  Registry r;
  r.set("a.b", 1.0);
  r.add("a.b", 2.0);
  EXPECT_DOUBLE_EQ(r.get("a.b"), 3.0);
  EXPECT_DOUBLE_EQ(r.get("missing"), 0.0);
  EXPECT_TRUE(r.has("a.b"));
  EXPECT_FALSE(r.has("a"));
}

TEST(Registry, SumPrefix) {
  Registry r;
  r.set("llc.bank0.hits", 10);
  r.set("llc.bank1.hits", 20);
  r.set("noc.bytes", 5);
  EXPECT_DOUBLE_EQ(r.sum_prefix("llc.bank"), 30.0);
  EXPECT_DOUBLE_EQ(r.sum_prefix("zzz"), 0.0);
}

TEST(Registry, ToJson) {
  Registry empty;
  EXPECT_EQ(empty.to_json(), "{}");

  Registry r;
  r.set("sim.cycles", 12345);
  r.set("llc.hit_ratio", 0.75);
  r.set("weird\"key\n", 1);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"sim.cycles\": 12345"), std::string::npos);
  EXPECT_NE(json.find("\"llc.hit_ratio\": 0.75"), std::string::npos);
  // Control characters and quotes are escaped, not emitted raw.
  EXPECT_NE(json.find("weird\\\"key\\n"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Registry, Csv) {
  Registry r;
  r.set("x", 1.5);
  const std::string csv = r.to_csv();
  EXPECT_NE(csv.find("key,value"), std::string::npos);
  EXPECT_NE(csv.find("x,1.5"), std::string::npos);
}

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), tdn::RequireError);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, Csv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}
