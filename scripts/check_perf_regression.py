#!/usr/bin/env python3
"""Compare a tdn-bench-* JSON report against a committed baseline.

Usage:
    check_perf_regression.py --baseline bench/baselines/BENCH_substrate.json \
        --current BENCH_substrate.json [--tolerance 0.15] [--strict]

Works for any report whose schema starts with ``tdn-bench-`` (substrate,
obs, ...); baseline and current must carry the same schema.

Direction is inferred from the metric name:
  * ``*_per_sec`` / ``*speedup*``  — higher is better
  * ``ns_per_*`` / ``*wall_ms`` / ``*rss*`` / ``*overhead*`` — lower is better
  * anything else — informational only (printed, never gated)

A metric regresses when it is worse than baseline by more than the tolerance
fraction. Exit status: 0 = no regressions (warnings about missing/new
metrics are allowed unless --strict), 1 = at least one regression (or, with
--strict, any schema mismatch).

Large *improvements* are also reported, as a hint to re-baseline — a stale
baseline makes the tolerance band meaningless. See docs/harness.md for the
re-baselining workflow.
"""

import argparse
import json
import sys


def direction(name: str) -> str:
    """'higher', 'lower', or 'info' for a metric name."""
    if name.endswith("_per_sec") or "speedup" in name:
        return "higher"
    if ("ns_per_" in name or name.endswith("wall_ms") or "rss" in name
            or "overhead" in name):
        return "lower"
    return "info"


def load_doc(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if not isinstance(schema, str) or not schema.startswith("tdn-bench-"):
        raise SystemExit(f"{path}: unexpected schema {schema!r}")
    return doc


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional slowdown (default 0.15)")
    ap.add_argument("--strict", action="store_true",
                    help="missing or unexpected metrics fail the check")
    args = ap.parse_args()

    base_doc = load_doc(args.baseline)
    cur_doc = load_doc(args.current)
    if base_doc.get("schema") != cur_doc.get("schema"):
        raise SystemExit(
            f"schema mismatch: baseline {base_doc.get('schema')!r} vs "
            f"current {cur_doc.get('schema')!r} — compare like against like")
    base, cur = base_doc["metrics"], cur_doc["metrics"]

    regressions, improvements, warnings = [], [], []
    if base_doc.get("smoke") != cur_doc.get("smoke"):
        # Smoke runs use smaller workload scales: their sim.*.wall_ms values
        # are not comparable to a full-run baseline.
        warnings.append(
            f"smoke flag mismatch: baseline={base_doc.get('smoke')} "
            f"current={cur_doc.get('smoke')} — compare like against like")
    if base_doc.get("threads") != cur_doc.get("threads"):
        # Thread-scaling metrics (sharded_traffic.*) depend on how many
        # cores the producing host had; a 1-core CI runner cannot be held to
        # a 16-core baseline's speedups.
        warnings.append(
            f"host threads mismatch: baseline={base_doc.get('threads')} "
            f"current={cur_doc.get('threads')} — scaling metrics are only "
            "comparable between equal-width hosts")
    for name, b in sorted(base.items()):
        if name not in cur:
            warnings.append(f"metric missing from current run: {name}")
            continue
        c = cur[name]
        d = direction(name)
        if d == "info" or b == 0:
            print(f"  info  {name}: {b:g} -> {c:g}")
            continue
        # Normalize to "ratio > 1 means worse".
        ratio = (c / b) if d == "lower" else (b / c)
        verdict = "ok"
        if ratio > 1.0 + args.tolerance:
            verdict = "REGRESSION"
            regressions.append(
                f"{name}: {b:g} -> {c:g} "
                f"({(ratio - 1.0) * 100:.1f}% worse, tolerance "
                f"{args.tolerance * 100:.0f}%)")
        elif ratio < 1.0 - args.tolerance:
            verdict = "improved"
            improvements.append(f"{name}: {b:g} -> {c:g}")
        print(f"  {verdict:>10}  {name}: {b:g} -> {c:g}")
    for name in sorted(set(cur) - set(base)):
        warnings.append(f"metric not in baseline (add it?): {name}")

    for w in warnings:
        print(f"WARNING: {w}")
    if improvements:
        print(f"\n{len(improvements)} metric(s) improved beyond tolerance — "
              "consider re-baselining (docs/harness.md):")
        for line in improvements:
            print(f"  {line}")
    if regressions:
        print(f"\n{len(regressions)} perf regression(s):", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    if args.strict and warnings:
        print("\n--strict: schema mismatches above are fatal", file=sys.stderr)
        return 1
    print("\nperf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
