#!/usr/bin/env python3
"""Pretty-print and compare tdn-obs-report-v1 latency reports.

Usage:
    report_latency.py REPORT.json [REPORT2.json ...]

One report: full breakdown — component histograms (mean / p50 / p99 / p999 /
max), per-distance latency, NoC transit, DRAM queueing, and the critical-path
decomposition. Several reports (e.g. the same workload under snuca / rnuca /
tdnuca): side-by-side comparison tables keyed by "workload/policy".

Reports come from any bench binary via --latency-report PATH, e.g.:

    bench_fig08_speedup --latency-report r_tdnuca.json --obs-policy tdnuca
"""

import json
import sys

COMPONENTS = ("mshr_wait", "noc_request", "bank_queue", "bank_service",
              "dram", "noc_reply")
SUMMARY_COLS = ("count", "mean", "p50", "p90", "p99", "p999", "max")


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "tdn-obs-report-v1":
        raise SystemExit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def fmt(v):
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def table(headers, rows):
    widths = [len(h) for h in headers]
    srows = [[fmt(c) for c in r] for r in rows]
    for r in srows:
        widths = [max(w, len(c)) for w, c in zip(widths, r)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines += ["  ".join(c.rjust(w) if i else c.ljust(w)
                        for i, (c, w) in enumerate(zip(r, widths)))
              for r in srows]
    return "\n".join(lines)


def summary_row(name, s):
    return [name] + [s.get(c, 0) for c in SUMMARY_COLS]


def print_single(doc):
    al = doc["access_latency"]
    print(f"== {doc['workload']} / {doc['policy']} — "
          f"{doc['sim']['cycles']:,} cycles, {doc['sim']['events']:,} events")
    print(f"   attributed accesses: {al['total']['count']:,} primary + "
          f"{al['merged']['count']:,} merged (MSHR-coalesced); "
          f"sum check: {'OK' if al['sum_check'] else 'FAILED'}")

    print("\n-- access latency by component (cycles)")
    rows = [summary_row("end_to_end", al["total"])]
    rows += [summary_row(c, al["components"][c]) for c in COMPONENTS]
    rows.append(summary_row("merged_wait", al["merged"]))
    print(table(("component",) + SUMMARY_COLS, rows))

    dist = [d for d in al.get("by_distance", []) if d["latency"]["count"]]
    if dist:
        print("\n-- end-to-end latency by core->bank hop distance")
        print(table(("hops",) + SUMMARY_COLS,
                    [summary_row(str(d["hops"]), d["latency"]) for d in dist]))

    print("\n-- network / memory service histograms")
    print(table(("histogram",) + SUMMARY_COLS, [
        summary_row("noc_control_transit", doc["noc"]["control_transit"]),
        summary_row("noc_data_transit", doc["noc"]["data_transit"]),
        summary_row("dram_queue_delay", doc["dram"]["queue_delay"]),
    ]))

    # Address translation (tdn::vm). Charged before the access issues, so it
    # is reported beside the six-way attribution, which still sums exactly.
    tr = doc.get("translation")
    if tr and tr["latency"]["count"]:
        print("\n-- address translation (charged before the access issues)")
        print(table(("histogram",) + SUMMARY_COLS, [
            summary_row("translation_latency", tr["latency"]),
            summary_row("page_walk", tr["walk"]),
        ]))

    cp = doc.get("critical_path")
    if cp:
        r = cp["realized"]
        print(f"\n-- critical path: {cp['tasks_done']}/{cp['tasks_total']} "
              f"tasks done, makespan {cp['makespan']:,} cycles")
        print(table(("measure", "cycles", "% of makespan"), [
            [k, r[k], 100.0 * r[k] / max(cp["makespan"], 1)]
            for k in ("dep_wait", "runtime_overhead", "compute",
                      "memory_stall")
        ]))
        print(f"   realized path: {r['tasks']} tasks, {r['cycles']:,} cycles"
              f" (tdnuca hooks: {r['tdnuca_hook_cycles']:,})")
        print(f"   inherent path: {cp['inherent_cycles']:,} cycles "
              f"(longest task {cp['longest_task']:,}) — ideal speedup limit "
              f"{cp['makespan'] / max(cp['inherent_cycles'], 1):.2f}x")


def print_compare(docs):
    key = lambda d: f"{d['workload']}/{d['policy']}"
    print("== latency comparison:", ", ".join(key(d) for d in docs))

    print("\n-- end-to-end miss latency (cycles)")
    print(table(("run", "count", "mean", "p50", "p99", "p999", "max"),
                [[key(d)] + [d["access_latency"]["total"].get(c, 0)
                             for c in ("count", "mean", "p50", "p99", "p999",
                                       "max")]
                 for d in docs]))

    print("\n-- mean cycles per component")
    print(table(("run",) + COMPONENTS,
                [[key(d)] + [d["access_latency"]["components"][c]["mean"]
                             for c in COMPONENTS]
                 for d in docs]))

    if any(d.get("translation", {}).get("latency", {}).get("count")
           for d in docs):
        print("\n-- address translation (mean cycles)")
        print(table(("run", "translations", "translation_mean", "walk_mean"),
                    [[key(d),
                      d.get("translation", {}).get("latency", {})
                       .get("count", 0),
                      d.get("translation", {}).get("latency", {})
                       .get("mean", 0),
                      d.get("translation", {}).get("walk", {})
                       .get("mean", 0)]
                     for d in docs]))

    if all(d.get("critical_path") for d in docs):
        print("\n-- critical-path decomposition (cycles)")
        print(table(("run", "makespan", "dep_wait", "overhead", "compute",
                     "mem_stall", "inherent"),
                    [[key(d), d["critical_path"]["makespan"]] +
                     [d["critical_path"]["realized"][k]
                      for k in ("dep_wait", "runtime_overhead", "compute",
                                "memory_stall")] +
                     [d["critical_path"]["inherent_cycles"]]
                     for d in docs]))


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    docs = [load(p) for p in sys.argv[1:]]
    bad = [d for d in docs if not d["access_latency"]["sum_check"]]
    if len(docs) == 1:
        print_single(docs[0])
    else:
        print_compare(docs)
    if bad:
        print("\nWARNING: component sums do not match end-to-end latency in: "
              + ", ".join(f"{d['workload']}/{d['policy']}" for d in bad),
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
