#!/usr/bin/env python3
"""Markdown link checker for the repo's docs.

Verifies, for every markdown file given on the command line:
  * relative file links (``[text](path)``, ``[text](path#anchor)``) resolve
    to an existing file or directory, relative to the linking file;
  * anchors — both same-file ``#section`` links and cross-file
    ``path#anchor`` links into another checked markdown file — match a
    heading (GitHub slug rules: lowercase, punctuation stripped, spaces to
    dashes);
  * reference-style definitions are resolved the same way.

External links (http/https/mailto) are not fetched — CI must not depend on
network reachability — but their URLs must at least parse.

Exit status: 0 clean, 1 any broken link. Used by .github/workflows/ci.yml;
run locally with:  python3 scripts/check_markdown_links.py README.md docs/*.md
"""

import re
import sys
from pathlib import Path

INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_LINK = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """Approximate GitHub's heading-to-anchor slug."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md_path: Path) -> set:
    try:
        text = md_path.read_text(encoding="utf-8")
    except OSError:
        return set()
    text = CODE_FENCE.sub("", text)
    slugs = set()
    counts = {}
    for m in HEADING.finditer(text):
        slug = github_slug(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(md_path: Path, repo_root: Path) -> list:
    errors = []
    text = md_path.read_text(encoding="utf-8")
    stripped = CODE_FENCE.sub("", text)
    targets = []
    for pattern in (INLINE_LINK, IMAGE_LINK):
        targets.extend(m.group(1) for m in pattern.finditer(stripped))
    targets.extend(m.group(1) for m in REF_DEF.finditer(stripped))

    for target in targets:
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if path_part:
            resolved = (md_path.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{md_path}: broken link '{target}' "
                              f"(no such file: {resolved.relative_to(repo_root)})")
                continue
        else:
            resolved = md_path
        if anchor and resolved.suffix.lower() in (".md", ".markdown"):
            if anchor.lower() not in anchors_of(resolved):
                errors.append(f"{md_path}: broken anchor '{target}' "
                              f"(no heading slugs to '#{anchor}')")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    repo_root = Path.cwd().resolve()
    errors = []
    checked = 0
    for arg in argv[1:]:
        p = Path(arg)
        if not p.exists():
            errors.append(f"{arg}: file not found")
            continue
        checked += 1
        errors.extend(check_file(p, repo_root))
    for e in errors:
        print(f"ERROR: {e}", file=sys.stderr)
    print(f"checked {checked} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken links'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
