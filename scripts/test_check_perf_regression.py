#!/usr/bin/env python3
"""Unit tests for check_perf_regression.py (direction inference, tolerance
band, schema / smoke-mismatch guards). Registered with ctest as
scripts.check_perf_regression; also runnable directly:

    python3 scripts/test_check_perf_regression.py
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_perf_regression as cpr  # noqa: E402


def write_doc(directory, name, metrics, schema="tdn-bench-substrate-v1",
              smoke=False, threads=None):
    path = os.path.join(directory, name)
    doc = {"schema": schema, "smoke": smoke, "metrics": metrics}
    if threads is not None:
        doc["threads"] = threads
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    return path


def run_main(argv):
    old = sys.argv
    sys.argv = ["check_perf_regression.py"] + argv
    try:
        return cpr.main()
    finally:
        sys.argv = old


class DirectionInference(unittest.TestCase):
    def test_higher_is_better(self):
        self.assertEqual(cpr.direction("event_dispatch.events_per_sec"),
                         "higher")
        self.assertEqual(cpr.direction("event_dispatch.speedup_vs_ref"),
                         "higher")

    def test_lower_is_better(self):
        self.assertEqual(cpr.direction("cache_probe.ns_per_op"), "lower")
        self.assertEqual(cpr.direction("sim.gauss.wall_ms"), "lower")
        self.assertEqual(cpr.direction("peak_rss_kb"), "lower")
        self.assertEqual(cpr.direction("llc_miss_attribution.overhead_ratio"),
                         "lower")

    def test_informational(self):
        self.assertEqual(cpr.direction("event_dispatch.waves"), "info")


class ToleranceBand(unittest.TestCase):
    def check(self, base, cur, tolerance=0.15, extra=None):
        with tempfile.TemporaryDirectory() as d:
            b = write_doc(d, "base.json", base)
            c = write_doc(d, "cur.json", cur)
            argv = ["--baseline", b, "--current", c,
                    "--tolerance", str(tolerance)] + (extra or [])
            return run_main(argv)

    def test_within_band_passes(self):
        self.assertEqual(
            self.check({"k.ns_per_op": 100.0}, {"k.ns_per_op": 110.0}), 0)

    def test_slowdown_beyond_band_fails(self):
        self.assertEqual(
            self.check({"k.ns_per_op": 100.0}, {"k.ns_per_op": 120.0}), 1)

    def test_direction_respected_for_higher_is_better(self):
        # events_per_sec dropping 20% is a regression ...
        self.assertEqual(self.check({"k.events_per_sec": 1000.0},
                                    {"k.events_per_sec": 800.0}), 1)
        # ... and rising 20% is an improvement, never a failure.
        self.assertEqual(self.check({"k.events_per_sec": 1000.0},
                                    {"k.events_per_sec": 1200.0}), 0)

    def test_info_metrics_never_gate(self):
        self.assertEqual(
            self.check({"k.waves": 10.0}, {"k.waves": 10000.0}), 0)

    def test_missing_metric_warns_but_passes(self):
        self.assertEqual(self.check({"k.ns_per_op": 100.0}, {}), 0)

    def test_missing_metric_fails_strict(self):
        self.assertEqual(
            self.check({"k.ns_per_op": 100.0}, {}, extra=["--strict"]), 1)

    def test_wider_tolerance_admits_the_same_delta(self):
        self.assertEqual(self.check({"k.ns_per_op": 100.0},
                                    {"k.ns_per_op": 130.0},
                                    tolerance=0.35), 0)


class SchemaAndSmokeGuards(unittest.TestCase):
    def test_unknown_schema_rejected(self):
        with tempfile.TemporaryDirectory() as d:
            b = write_doc(d, "base.json", {}, schema="something-else")
            with self.assertRaises(SystemExit):
                cpr.load_doc(b)

    def test_any_tdn_bench_schema_accepted(self):
        with tempfile.TemporaryDirectory() as d:
            b = write_doc(d, "base.json", {}, schema="tdn-bench-obs-v1")
            self.assertEqual(cpr.load_doc(b)["schema"], "tdn-bench-obs-v1")

    def test_cross_schema_comparison_rejected(self):
        with tempfile.TemporaryDirectory() as d:
            b = write_doc(d, "base.json", {"k.ns_per_op": 1.0},
                          schema="tdn-bench-substrate-v1")
            c = write_doc(d, "cur.json", {"k.ns_per_op": 1.0},
                          schema="tdn-bench-obs-v1")
            with self.assertRaises(SystemExit):
                run_main(["--baseline", b, "--current", c])

    def test_smoke_mismatch_warns_and_fails_strict(self):
        with tempfile.TemporaryDirectory() as d:
            b = write_doc(d, "base.json", {"k.ns_per_op": 1.0}, smoke=False)
            c = write_doc(d, "cur.json", {"k.ns_per_op": 1.0}, smoke=True)
            self.assertEqual(run_main(["--baseline", b, "--current", c]), 0)
            self.assertEqual(run_main(["--baseline", b, "--current", c,
                                       "--strict"]), 1)

    def test_host_threads_mismatch_warns_and_fails_strict(self):
        # sharded_traffic.* speedups from a 1-core host are not comparable
        # to a 16-core baseline; the checker warns, and --strict fails.
        with tempfile.TemporaryDirectory() as d:
            b = write_doc(d, "base.json",
                          {"sharded_traffic.t4.speedup_vs_serial": 2.0},
                          threads=16)
            c = write_doc(d, "cur.json",
                          {"sharded_traffic.t4.speedup_vs_serial": 2.0},
                          threads=1)
            self.assertEqual(run_main(["--baseline", b, "--current", c]), 0)
            self.assertEqual(run_main(["--baseline", b, "--current", c,
                                       "--strict"]), 1)

    def test_matching_host_threads_no_warning(self):
        with tempfile.TemporaryDirectory() as d:
            b = write_doc(d, "base.json", {"k.ns_per_op": 1.0}, threads=4)
            c = write_doc(d, "cur.json", {"k.ns_per_op": 1.0}, threads=4)
            self.assertEqual(run_main(["--baseline", b, "--current", c,
                                       "--strict"]), 0)


if __name__ == "__main__":
    unittest.main()
