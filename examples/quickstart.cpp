// Quickstart — build a tiny task dataflow program, run it on the simulated
// 16-tile machine under S-NUCA and TD-NUCA, and compare the outcomes.
//
//   $ ./quickstart
//
// The program is a two-stage pipeline: producer tasks write blocks (out),
// consumer tasks read them (in) and emit results that nothing ever reuses —
// the sweet spot for TD-NUCA's local-bank mapping + LLC bypass.
#include <cstdio>

#include "system/tiled_system.hpp"

using namespace tdn;

namespace {

// Build the same little program into any system: 32 producer/consumer pairs
// over 48 KiB blocks.
void build_pipeline(system::TiledSystem& sys) {
  auto& rt = sys.runtime();
  auto& vs = sys.vspace();
  const Cycle compute = 4;
  for (int i = 0; i < 32; ++i) {
    const AddrRange block = vs.allocate(48 * kKiB, 64, "block");
    const AddrRange result = vs.allocate(4 * kKiB, 64, "result");
    const DepId block_dep = rt.region(block, "block");
    const DepId result_dep = rt.region(result, "result");

    core::TaskProgram produce;
    core::AccessPhase w;
    w.range = block;
    w.kind = AccessKind::Write;
    w.compute_per_touch = compute;
    produce.add_phase(w);
    rt.create_task("produce", {{block_dep, DepUse::Out}}, std::move(produce));

    core::TaskProgram consume;
    core::AccessPhase r;
    r.range = block;
    r.kind = AccessKind::Read;
    r.compute_per_touch = compute;
    consume.add_phase(r);
    core::AccessPhase out;
    out.range = result;
    out.kind = AccessKind::Write;
    out.compute_per_touch = compute;
    consume.add_phase(out);
    rt.create_task("consume",
                   {{block_dep, DepUse::In}, {result_dep, DepUse::Out}},
                   std::move(consume));
  }
}

Cycle run_policy(system::PolicyKind policy, const char* label) {
  system::SystemConfig cfg;
  cfg.policy = policy;
  system::TiledSystem sys(cfg);
  build_pipeline(sys);
  const Cycle cycles = sys.run();
  std::printf("%-22s %10llu cycles   LLC accesses %8.0f   hit ratio %.2f   "
              "NUCA distance %.2f\n",
              label, static_cast<unsigned long long>(cycles),
              static_cast<double>(sys.caches().llc_accesses()),
              sys.caches().llc_hit_ratio(),
              sys.caches().stats().nuca_distance.mean());
  return cycles;
}

}  // namespace

int main() {
  std::printf("TD-NUCA quickstart: 32 producer->consumer block pipelines on a "
              "4x4-tile CMP\n\n");
  const Cycle s = run_policy(system::PolicyKind::SNuca, "S-NUCA (baseline)");
  const Cycle r = run_policy(system::PolicyKind::RNuca, "R-NUCA");
  const Cycle t = run_policy(system::PolicyKind::TdNuca, "TD-NUCA");
  std::printf("\nspeedup over S-NUCA:  R-NUCA %.3fx   TD-NUCA %.3fx\n",
              static_cast<double>(s) / static_cast<double>(r),
              static_cast<double>(s) / static_cast<double>(t));
  return 0;
}
