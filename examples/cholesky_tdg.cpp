// Cholesky — the paper's Fig. 2 running example. Builds the tiled Cholesky
// task graph, prints its structure, and compares the three NUCA policies.
//
//   $ ./cholesky_tdg
#include <cstdio>
#include <map>

#include "system/tiled_system.hpp"
#include "workloads/workload.hpp"

using namespace tdn;

namespace {

Cycle run_policy(system::PolicyKind policy, bool print_graph) {
  system::SystemConfig cfg;
  cfg.policy = policy;
  system::TiledSystem sys(cfg);
  auto wl = workloads::make_workload("cholesky", {});
  wl->build(sys);

  if (print_graph) {
    const auto& tasks = sys.runtime().tasks();
    std::map<std::string, int> kinds;
    std::size_t edges = 0;
    for (const auto& t : tasks) {
      kinds[t.label.substr(0, t.label.find('('))]++;
      edges += t.successors.size();
    }
    std::printf("Cholesky TDG: %zu tasks, %zu edges\n", tasks.size(), edges);
    for (const auto& [kind, n] : kinds)
      std::printf("  %-8s x%d\n", kind.c_str(), n);
    std::printf("\n");
  }

  const Cycle cycles = sys.run();
  std::printf("%-22s %10llu cycles   LLC hit ratio %.2f   NUCA distance %.2f\n",
              system::to_string(policy),
              static_cast<unsigned long long>(cycles),
              sys.caches().llc_hit_ratio(),
              sys.caches().stats().nuca_distance.mean());
  return cycles;
}

}  // namespace

int main() {
  std::printf("Tiled Cholesky factorization (paper Fig. 2)\n\n");
  const Cycle s = run_policy(system::PolicyKind::SNuca, true);
  run_policy(system::PolicyKind::RNuca, false);
  const Cycle t = run_policy(system::PolicyKind::TdNuca, false);
  std::printf("\nTD-NUCA speedup over S-NUCA: %.3fx\n",
              static_cast<double>(s) / static_cast<double>(t));
  return 0;
}
