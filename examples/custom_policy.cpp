// custom_policy — extend the library with your own NUCA mapping policy.
//
// Implements "column NUCA": every cache block maps to a bank in the
// requester's mesh column (interleaved by address), halving the average
// NUCA distance versus full-chip interleaving without any software support.
// Demonstrates assembling a simulated machine from the library's parts
// instead of using the TiledSystem convenience wrapper.
//
//   $ ./custom_policy
#include <cstdio>

#include "coherence/coherent_system.hpp"
#include "core/sim_core.hpp"
#include "mem/address_space.hpp"
#include "mem/dram.hpp"
#include "mem/page_table.hpp"
#include "noc/mesh.hpp"
#include "noc/network.hpp"
#include "nuca/snuca.hpp"
#include "runtime/runtime_system.hpp"
#include "sim/event_queue.hpp"

using namespace tdn;

namespace {

/// Map each block to one of the banks in the requesting core's column.
class ColumnNucaPolicy final : public nuca::MappingPolicy {
 public:
  explicit ColumnNucaPolicy(const noc::Mesh& mesh) : mesh_(mesh) {}
  const char* name() const override { return "Column-NUCA"; }

  nuca::MapDecision map(CoreId core, Addr /*vaddr*/, Addr paddr,
                        AccessKind /*kind*/) override {
    const noc::Coord c = mesh_.coord(core);
    const unsigned row = static_cast<unsigned>((paddr / 64) % mesh_.height());
    return nuca::MapDecision::to_bank(mesh_.tile({c.x, row}));
  }

 private:
  const noc::Mesh& mesh_;
};

Cycle run(nuca::MappingPolicy& policy) {
  sim::EventQueue eq;
  noc::Mesh mesh(4, 4);
  noc::Network net(mesh, eq, {});
  mem::MemControllers mcs(4, {0, 3, 12, 15}, {});
  mem::PageTable pt;
  coherence::CoherentSystem caches(eq, net, mesh, mcs, policy, {}, 16);

  std::vector<std::unique_ptr<core::SimCore>> cores;
  std::vector<core::SimCore*> core_ptrs;
  for (CoreId i = 0; i < 16; ++i) {
    cores.push_back(std::make_unique<core::SimCore>(i, eq, caches, pt));
    core_ptrs.push_back(cores.back().get());
  }
  runtime::FifoScheduler sched;
  runtime::RuntimeHooks hooks;  // no runtime/hardware co-design here
  runtime::RuntimeSystem rt(eq, core_ptrs, sched, hooks);

  // Workload: every core streams through its own 256 KiB buffer twice.
  mem::VirtualSpace vs;
  for (int i = 0; i < 16; ++i) {
    const AddrRange buf = vs.allocate(256 * kKiB, 64, "buf");
    const DepId dep = rt.region(buf, "buf");
    core::TaskProgram prog;
    core::AccessPhase r;
    r.range = buf;
    r.kind = AccessKind::Read;
    r.passes = 2;
    r.compute_per_touch = 2;
    prog.add_phase(r);
    rt.create_task("stream", {{dep, DepUse::In}}, std::move(prog));
  }

  bool done = false;
  rt.run([&] { done = true; });
  eq.run();
  std::printf("%-14s %10llu cycles   mean NUCA distance %.2f   NoC bytes %llu\n",
              policy.name(), static_cast<unsigned long long>(rt.makespan()),
              caches.stats().nuca_distance.mean(),
              static_cast<unsigned long long>(net.total_router_bytes()));
  return rt.makespan();
}

}  // namespace

int main() {
  std::printf("Custom policy example: column-interleaved NUCA vs S-NUCA\n\n");
  noc::Mesh mesh(4, 4);
  nuca::SNucaPolicy snuca(16);
  ColumnNucaPolicy column(mesh);
  const Cycle s = run(snuca);
  const Cycle c = run(column);
  std::printf("\nColumn-NUCA speedup: %.3fx\n",
              static_cast<double>(s) / static_cast<double>(c));
  return 0;
}
