// policy_explorer — run any of the paper's workloads under every policy and
// print the headline metrics side by side. The four runs execute
// concurrently on a SweepRunner pool (docs/harness.md).
//
//   $ ./policy_explorer [workload] [scale] [--jobs N]
//   $ ./policy_explorer lu 0.5 -j 2
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/sweep_runner.hpp"
#include "stats/table.hpp"
#include "workloads/workload.hpp"

using namespace tdn;

int main(int argc, char** argv) {
  std::string workload = "lu";
  double scale = 1.0;
  unsigned jobs = 0;  // 0 = hardware_concurrency
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--jobs" || a == "-j") {
      if (i + 1 < argc) jobs = static_cast<unsigned>(std::atoi(argv[++i]));
    } else {
      positional.push_back(a);
    }
  }
  if (!positional.empty()) workload = positional[0];
  if (positional.size() > 1) scale = std::atof(positional[1].c_str());

  std::printf("policy explorer: workload=%s scale=%.2f\n\n", workload.c_str(),
              scale);
  std::vector<harness::RunConfig> cfgs;
  for (const auto policy :
       {system::PolicyKind::SNuca, system::PolicyKind::RNuca,
        system::PolicyKind::TdNuca, system::PolicyKind::TdNucaBypassOnly}) {
    harness::RunConfig cfg;
    cfg.workload = workload;
    cfg.policy = policy;
    cfg.params.scale = scale;
    cfgs.push_back(std::move(cfg));
  }
  harness::SweepOptions opts;
  opts.jobs = jobs;
  opts.progress = true;
  harness::SweepRunner runner(opts);
  const auto results = runner.run(cfgs);

  stats::Table table({"policy", "cycles", "LLC accesses", "hit ratio",
                      "NUCA dist", "NoC bytes", "DRAM accesses"});
  for (const auto& r : results) {
    table.add_row({r.policy, stats::Table::num(r.get("sim.cycles"), 0),
                   stats::Table::num(r.get("llc.accesses"), 0),
                   stats::Table::num(r.get("llc.hit_ratio"), 3),
                   stats::Table::num(r.get("nuca.mean_distance"), 2),
                   stats::Table::num(r.get("noc.router_bytes"), 0),
                   stats::Table::num(r.get("dram.accesses"), 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
