// policy_explorer — run any of the paper's workloads under every policy and
// print the headline metrics side by side.
//
//   $ ./policy_explorer [workload] [scale]
//   $ ./policy_explorer lu 0.5
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/runner.hpp"
#include "stats/table.hpp"
#include "workloads/workload.hpp"

using namespace tdn;

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "lu";
  const double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

  std::printf("policy explorer: workload=%s scale=%.2f\n\n", workload.c_str(),
              scale);
  stats::Table table({"policy", "cycles", "LLC accesses", "hit ratio",
                      "NUCA dist", "NoC bytes", "DRAM accesses"});
  for (const auto policy :
       {system::PolicyKind::SNuca, system::PolicyKind::RNuca,
        system::PolicyKind::TdNuca, system::PolicyKind::TdNucaBypassOnly}) {
    harness::RunConfig cfg;
    cfg.workload = workload;
    cfg.policy = policy;
    cfg.params.scale = scale;
    const auto r = harness::run_experiment(cfg);
    table.add_row({r.policy, stats::Table::num(r.get("sim.cycles"), 0),
                   stats::Table::num(r.get("llc.accesses"), 0),
                   stats::Table::num(r.get("llc.hit_ratio"), 3),
                   stats::Table::num(r.get("nuca.mean_distance"), 2),
                   stats::Table::num(r.get("noc.router_bytes"), 0),
                   stats::Table::num(r.get("dram.accesses"), 0)});
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
