# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("sim")
subdirs("obs")
subdirs("vm")
subdirs("mem")
subdirs("noc")
subdirs("cache")
subdirs("coherence")
subdirs("core")
subdirs("runtime")
subdirs("tdnuca")
subdirs("nuca")
subdirs("fault")
subdirs("energy")
subdirs("system")
subdirs("workloads")
subdirs("multi")
subdirs("ckpt")
subdirs("serve")
subdirs("harness")
